package rtm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pcpda/internal/db"
	"pcpda/internal/fault"
	"pcpda/internal/history"
	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

// ChaosConfig parameterizes RunChaos. Zero-valued knobs take the defaults
// noted on each field.
type ChaosConfig struct {
	// Schedules is the number of independent seeded fault schedules to run
	// (default 1). Schedule s uses seed Seed+s for its injector, its
	// workers' operation shuffles and the manager's Exec jitter.
	Schedules int
	// Seed is the base seed.
	Seed int64
	// Workers is the number of concurrent transaction-issuing goroutines
	// per schedule (default 3).
	Workers int
	// Iters is the number of transactions each worker attempts (default 3).
	Iters int
	// FirmDeadlines turns on firm-deadline enforcement in the manager.
	FirmDeadlines bool
	// Timeout is the per-schedule wall-clock budget; exceeding it means
	// the manager wedged and the schedule fails (default 10s).
	Timeout time.Duration
	// PDelay/PWakeup/PAbort/PCancel are the injection probabilities
	// (fault.Config). All zero means no injection — the schedule then only
	// exercises real context cancellations.
	PDelay, PWakeup, PAbort, PCancel float64
	// CancelProb is the probability that a worker races a real context
	// cancellation against one of its transactions (default 0.2).
	CancelProb float64
	// ReadOnlyProb is the probability that a worker iteration runs a
	// read-only snapshot transaction instead of an update. Every committed
	// RO transaction's observations are validated post-quiescence against
	// the committed state at its snapshot tick (history.CheckSnapshot);
	// a snapshot evicted by the chain bound is a tolerated typed refusal.
	ReadOnlyProb float64
}

// ChaosReport aggregates manager statistics across every schedule.
type ChaosReport struct {
	Schedules      int
	Begins         int
	Commits        int
	Aborts         int
	CycleAborts    int
	Cancellations  int
	DeadlineAborts int
	Retries        int
	InjectedFaults int
	LockWaits      int
	CommitWaits    int
	ROBegins       int64
	ROCommits      int64
	ROEvictions    int64
	ROReadsChecked int // snapshot observations validated against the history
}

func (r *ChaosReport) add(s Stats) {
	r.Begins += s.Begins
	r.Commits += s.Commits
	r.Aborts += s.Aborts
	r.CycleAborts += s.CycleAborts
	r.Cancellations += s.Cancellations
	r.DeadlineAborts += s.DeadlineAborts
	r.Retries += s.Retries
	r.InjectedFaults += s.InjectedFaults
	r.LockWaits += s.LockWaits
	r.CommitWaits += s.CommitWaits
	r.ROBegins += s.ROBegins
	r.ROCommits += s.ROCommits
	r.ROEvictions += s.ROEvictions
}

// String renders the report, one counter per line.
func (r *ChaosReport) String() string {
	return fmt.Sprintf(
		"schedules %d: begins %d, commits %d, aborts %d, cycle-aborts %d, "+
			"cancellations %d, deadline-aborts %d, retries %d, injected faults %d, "+
			"lock-waits %d, commit-waits %d, ro-begins %d, ro-commits %d, "+
			"ro-evictions %d, ro-reads-checked %d",
		r.Schedules, r.Begins, r.Commits, r.Aborts, r.CycleAborts,
		r.Cancellations, r.DeadlineAborts, r.Retries, r.InjectedFaults,
		r.LockWaits, r.CommitWaits, r.ROBegins, r.ROCommits,
		r.ROEvictions, r.ROReadsChecked)
}

// RunChaos hammers a fresh manager per schedule with concurrent workers
// under seeded fault injection (forced delays, spurious wakeups, forced
// aborts, injected and real cancellations, optional firm deadlines), then
// audits the wreckage: the manager must be quiescent with no leaked state
// (CheckInvariants) and the recorded history must be serializable in commit
// order. The first schedule that fails aborts the run with an error naming
// its seed, so any failure is replayable.
func RunChaos(set *txn.Set, cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Schedules <= 0 {
		cfg.Schedules = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.CancelProb == 0 {
		cfg.CancelProb = 0.2
	}
	rep := &ChaosReport{}
	for s := 0; s < cfg.Schedules; s++ {
		seed := cfg.Seed + int64(s)
		if err := runSchedule(set, cfg, seed, rep); err != nil {
			return rep, fmt.Errorf("chaos schedule %d (seed %d): %w", s, seed, err)
		}
		rep.Schedules++
	}
	return rep, nil
}

// runSchedule executes one seeded fault schedule and audits the result.
func runSchedule(set *txn.Set, cfg ChaosConfig, seed int64, rep *ChaosReport) error {
	inj := fault.NewSeeded(fault.Config{
		Seed:    seed,
		PDelay:  cfg.PDelay,
		PWakeup: cfg.PWakeup,
		PAbort:  cfg.PAbort,
		PCancel: cfg.PCancel,
	})
	m, err := NewWithOptions(set, Options{
		FirmDeadlines: cfg.FirmDeadlines,
		Injector:      inj,
		Seed:          seed,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	// Committed RO transactions record their observations here; they are
	// validated after quiescence, once the history is stable.
	var roMu sync.Mutex
	var roObs []roObservation

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(wseed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(wseed))
			for i := 0; i < cfg.Iters; i++ {
				tmpl := set.Templates[rng.Intn(len(set.Templates))]
				var err error
				if cfg.ReadOnlyProb > 0 && rng.Float64() < cfg.ReadOnlyProb {
					err = chaosRO(ctx, m, rng, tmpl, func(ob roObservation) {
						roMu.Lock()
						roObs = append(roObs, ob)
						roMu.Unlock()
					})
				} else {
					err = chaosOnce(ctx, m, rng, tmpl, cfg.CancelProb)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(seed*31 + int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	if st := m.Stats(); st.Live != 0 {
		return fmt.Errorf("%d transactions still live after quiescence", st.Live)
	}
	if m.Locks().LockCount() != 0 {
		return fmt.Errorf("%d locks leaked after quiescence", m.Locks().LockCount())
	}
	if err := m.CheckInvariants(); err != nil {
		return err
	}
	hist := m.History()
	for _, ob := range roObs {
		if vs := hist.CheckSnapshot(ob.snap, ob.reads); len(vs) > 0 {
			return fmt.Errorf("snapshot-read violation at tick %d: %s", ob.snap, vs[0].Detail)
		}
		rep.ROReadsChecked += len(ob.reads)
	}
	rep.add(m.Stats())
	return nil
}

// roObservation is one committed read-only transaction's evidence: its
// snapshot tick and everything it read.
type roObservation struct {
	snap  rt.Ticks
	reads []history.SnapshotRead
}

// chaosRO drives one read-only snapshot transaction over tmpl's declared
// access sets and records the full observation for post-quiescence
// validation. A snapshot evicted by the chain bound under the concurrent
// update hammer is the designed-for refusal and is tolerated (the handle
// is already aborted); a wrong answer would surface later in
// CheckSnapshot.
func chaosRO(ctx context.Context, m *Manager, rng *rand.Rand, tmpl *txn.Template, record func(roObservation)) error {
	ro, err := m.BeginReadOnly(ctx)
	if err != nil {
		return tolerate(ctx, err)
	}
	items := make([]rt.Item, 0, 8)
	items = append(items, tmpl.ReadSet().Items()...)
	items = append(items, tmpl.WriteSet().Items()...)
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	ob := roObservation{snap: ro.Snapshot()}
	for _, x := range items {
		_, ver, from, err := ro.ReadVersion(ctx, x)
		if err != nil {
			if errors.Is(err, db.ErrSnapshotEvicted) {
				return nil // typed retryable refusal; Read already aborted the handle
			}
			ro.Abort()
			return tolerate(ctx, err)
		}
		ob.reads = append(ob.reads, history.SnapshotRead{Item: x, Ver: ver, From: from})
	}
	if err := ro.Commit(ctx); err != nil {
		return err
	}
	record(ob)
	return nil
}

// chaosOnce drives one transaction over tmpl's declared access sets in a
// random order — half the time through Exec (exercising retry/backoff),
// half manually, possibly racing a real context cancellation. Sacrifices,
// deadline misses and cancellations are the point of the exercise and are
// tolerated; anything else (including a wedge that exhausts the schedule's
// context budget) propagates as a failure.
func chaosOnce(ctx context.Context, m *Manager, rng *rand.Rand, tmpl *txn.Template, cancelProb float64) error {
	ops := make([]txn.Step, 0, 8)
	for _, x := range tmpl.ReadSet().Items() {
		ops = append(ops, txn.Read(x))
	}
	for _, x := range tmpl.WriteSet().Items() {
		ops = append(ops, txn.Write(x))
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })

	opCtx := ctx
	var opCancel context.CancelFunc
	raceCancel := rng.Float64() < cancelProb
	if raceCancel {
		opCtx, opCancel = context.WithCancel(ctx)
		delay := time.Duration(rng.Intn(200)) * time.Microsecond
		timer := time.AfterFunc(delay, opCancel)
		defer timer.Stop()
		defer opCancel()
	}

	var err error
	if rng.Intn(2) == 0 {
		err = m.Exec(opCtx, tmpl.Name, func(tx *Txn) error {
			return applyOps(opCtx, tx, ops)
		})
	} else {
		var tx *Txn
		tx, err = m.Begin(opCtx, tmpl.Name)
		if err == nil {
			err = applyOps(opCtx, tx, ops)
			if err == nil {
				err = tx.Commit(opCtx)
			}
			tx.Abort() // no-op unless something above left it open
		}
	}
	return tolerate(ctx, err)
}

// applyOps performs the shuffled declared operations on tx.
func applyOps(ctx context.Context, tx *Txn, ops []txn.Step) error {
	for _, op := range ops {
		var err error
		if op.Kind == txn.ReadStep {
			_, err = tx.Read(ctx, op.Item)
		} else {
			err = tx.Write(ctx, op.Item, db.SyntheticValue(tx.job.Run, op.Item))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// tolerate filters the failures a chaos schedule is designed to provoke.
// An error caused by the schedule's own context budget expiring (parent
// ctx) means the manager wedged and is NOT tolerated.
func tolerate(parent context.Context, err error) error {
	if err == nil {
		return nil
	}
	if parent.Err() != nil {
		return fmt.Errorf("schedule budget exhausted (wedged?): %w", err)
	}
	switch {
	case errors.Is(err, ErrAborted),
		errors.Is(err, ErrDeadlineMissed),
		errors.Is(err, ErrCancelled),
		errors.Is(err, context.Canceled):
		return nil
	}
	return err
}
