// Incremental ceiling and priority bookkeeping for the live manager.
//
// The admission decisions themselves stay in internal/pcpda; this file only
// maintains, in O(1) amortized per lock event, the two quantities those
// decisions keep asking for:
//
//   - the read-lock ceiling profile (how many read locks are live at each
//     write-ceiling rank), which answers Sysceil_i and enumerates T* through
//     the cc.CeilingIndex capability instead of a per-request scan over the
//     whole lock table; and
//
//   - running priorities under priority inheritance, maintained as explicit
//     donations (a parked waiter donates its running priority to each of its
//     blockers) instead of a global fixpoint recomputation on every blocking
//     or finishing event.
//
// Both structures exploit the paper's standing assumption that transaction
// priorities form a small total order: ranks are dense (rt.PriorityDomain),
// so "a count per priority level" is a flat array.
//
// Donation state is kept consistent with the classical inheritance fixpoint
// at every release of m.mu: parking (Status=Blocked, Blockers set, donations
// added) and waking (donations retracted, Blockers cleared) are each atomic
// under the lock, so CheckInvariants can always recompute the fixpoint from
// scratch and demand equality.
package rtm

import (
	"pcpda/internal/cc"
	"pcpda/internal/db"
	"pcpda/internal/rt"
)

// txnRes bundles every per-transaction allocation that can be recycled
// between transaction instances: the wait node, the donation multiset, the
// ceiling count vector, the blocker scratch list and the declared-set
// containers. One warm manager runs an arbitrary number of transactions with
// no per-instance allocation of these. The cc.Job itself is NOT pooled — a
// finished handle's job stays inspectable (tests poll job.Status after the
// fact), so it must never be reused.
type txnRes struct {
	wn         waitNode
	recv       *rt.PriorityMultiset // donations received while others wait on us
	ceilCounts []int32              // live read locks per write-ceiling rank
	blockers   []rt.JobID           // scratch for commit-wait blocker lists
	dataRead   *rt.ItemSet
	ws         *db.Workspace
}

func (m *Manager) getRes() *txnRes {
	if k := len(m.freeRes); k > 0 {
		r := m.freeRes[k-1]
		m.freeRes = m.freeRes[:k-1]
		return r
	}
	r := &txnRes{
		recv:       m.dom.NewMultiset(),
		ceilCounts: make([]int32, m.dom.Size()),
		dataRead:   rt.NewItemSet(),
		ws:         db.NewWorkspace(),
	}
	r.wn.ch = make(chan struct{}, 1)
	r.wn.allIdx = -1
	return r
}

// putRes returns r to the pool. The ceiling counts are already zero
// (ceilRelease runs in finish before this) and the wait node is already
// deregistered (park never returns while registered).
func (m *Manager) putRes(r *txnRes) {
	r.wn.t = nil
	r.wn.drain()
	r.recv.Reset()
	r.dataRead.Clear()
	r.ws.Discard()
	r.blockers = r.blockers[:0]
	m.freeRes = append(m.freeRes, r)
}

// --- incremental read-lock ceiling index -------------------------------------

// initCeilIndex precomputes the dense priority domain, the per-item ceiling
// rank and the global count array. Called once from NewWithOptions.
func (m *Manager) initCeilIndex() {
	pris := make([]rt.Priority, 0, len(m.set.Templates))
	maxItem := rt.Item(-1)
	for _, tmpl := range m.set.Templates {
		pris = append(pris, tmpl.Priority)
		for _, x := range tmpl.AccessSet().Items() {
			if x > maxItem {
				maxItem = x
			}
		}
	}
	m.dom = rt.NewPriorityDomain(pris)
	m.wceilRank = make([]int16, maxItem+1)
	for x := range m.wceilRank {
		r, ok := m.dom.Rank(m.ceil.Wceil(rt.Item(x)))
		if !ok {
			r = -1 // nobody writes x: its ceiling is the dummy level
		}
		m.wceilRank[x] = int16(r)
	}
	m.readCeil = make([]int32, m.dom.Size())
	m.ceilTop = -1
}

// ceilAdd records a newly acquired read lock by t on x. Caller holds m.mu
// and must only call this when the lock table reported a fresh acquisition
// (Acquire returned true), so re-reads never double-count.
func (m *Manager) ceilAdd(t *Txn, x rt.Item) {
	r := int(m.wceilRank[x])
	if r < 0 {
		return
	}
	m.readCeil[r]++
	t.res.ceilCounts[r]++
	if r > m.ceilTop {
		m.ceilTop = r
	}
}

// ceilRelease drops every ceiling contribution of t (all its read locks go
// away together at finish — the manager is strict 2PL). O(priority domain),
// allocation-free, and leaves t's count vector zeroed for reuse.
func (m *Manager) ceilRelease(t *Txn) {
	for r, c := range t.res.ceilCounts {
		if c != 0 {
			m.readCeil[r] -= c
			t.res.ceilCounts[r] = 0
		}
	}
	for m.ceilTop >= 0 && m.readCeil[m.ceilTop] == 0 {
		m.ceilTop--
	}
}

// SysceilExcluding implements cc.CeilingIndex: the highest Wceil over items
// read-locked by transactions other than o, from the count profile alone.
// Passing an id that is not live (rt.NoJob included) excludes nothing.
//
//pcpda:alloc-free
//pcpda:holds mu
func (m *Manager) SysceilExcluding(o rt.JobID) rt.Priority {
	var own []int32
	if t, ok := m.active[o]; ok {
		own = t.res.ceilCounts
	}
	for r := m.ceilTop; r >= 0; r-- {
		n := m.readCeil[r]
		if own != nil {
			n -= own[r]
		}
		if n > 0 {
			return m.dom.Priority(r)
		}
	}
	return rt.Dummy
}

// EachCeilingHolder implements cc.CeilingIndex: every live transaction other
// than o holding a read lock on an item with Wceil == c, in job-id order.
//
//pcpda:alloc-free
//pcpda:holds mu
func (m *Manager) EachCeilingHolder(c rt.Priority, o rt.JobID, fn func(holder rt.JobID)) {
	r, ok := m.dom.Rank(c)
	if !ok {
		return
	}
	for _, t := range m.actList {
		if t.job.ID != o && t.res.ceilCounts[r] > 0 {
			fn(t.job.ID)
		}
	}
}

// --- donation-based priority inheritance -------------------------------------

// donate adds t's running priority to every blocker's received-donations
// multiset and cascades raises. Called when t parks (Blockers just filled).
// Two phases — add everywhere first, then refresh — so a cascade that loops
// back through a transient wait cycle never retracts a value that was not
// yet added.
func (m *Manager) donate(t *Txn) {
	p := t.job.RunPri
	t.donatedPri = p
	for _, bid := range t.job.Blockers {
		if b, ok := m.active[bid]; ok {
			b.res.recv.Add(p)
		}
	}
	for _, bid := range t.job.Blockers {
		if b, ok := m.active[bid]; ok {
			m.refreshPri(b)
		}
	}
}

// retract undoes t's outstanding donation and marks t runnable again.
// Called immediately after a park wakes (before the condition is
// re-evaluated), so donation state tracks the Blocked set exactly. Blockers
// that already finished are simply gone from the active map — their
// bookkeeping died with them.
func (m *Manager) retract(t *Txn) {
	p := t.donatedPri
	if p.IsDummy() {
		return
	}
	t.donatedPri = rt.Dummy
	blockers := t.job.Blockers
	t.job.Blockers = nil
	t.job.Status = cc.Ready
	for _, bid := range blockers {
		if b, ok := m.active[bid]; ok {
			b.res.recv.Remove(p)
		}
	}
	for _, bid := range blockers {
		if b, ok := m.active[bid]; ok {
			m.refreshPri(b)
		}
	}
}

// refreshPri recomputes b's running priority (base ∨ received donations),
// propagates a change through b's own outstanding donation, and — when the
// priority ROSE and b is parked on a lock request — wakes b, because LC2
// admits on the running priority and may now pass. The cascade terminates:
// within one donate (retract) call priorities only move up (down) through a
// finite lattice.
func (m *Manager) refreshPri(b *Txn) {
	np := b.job.BasePri().Max(b.res.recv.Max())
	if np == b.job.RunPri {
		return
	}
	raised := np > b.job.RunPri
	b.job.RunPri = np
	if !b.donatedPri.IsDummy() && b.donatedPri != np {
		old := b.donatedPri
		b.donatedPri = np
		for _, bid := range b.job.Blockers {
			if c, ok := m.active[bid]; ok {
				c.res.recv.Remove(old)
				c.res.recv.Add(np)
			}
		}
		for _, bid := range b.job.Blockers {
			if c, ok := m.active[bid]; ok {
				m.refreshPri(c)
			}
		}
	}
	if raised && b.res.wn.parked() && b.res.wn.kind == waitLock {
		b.res.wn.wake()
	}
}

// fixpointPri recomputes the inheritance fixpoint from scratch (the legacy
// O(live²) rule: a blocker runs at the highest priority among the
// transactions transitively blocked on it) into the provided map. Used by
// CheckInvariants and the property tests to certify the incremental
// donations; never on the hot path.
func (m *Manager) fixpointPri(want map[rt.JobID]rt.Priority) {
	for id, t := range m.active {
		want[id] = t.job.BasePri()
	}
	for changed := true; changed; {
		changed = false
		for _, t := range m.active {
			if t.job.Status != cc.Blocked {
				continue
			}
			for _, bid := range t.job.Blockers {
				if _, ok := m.active[bid]; !ok {
					continue
				}
				if want[bid] < want[t.job.ID] {
					want[bid] = want[t.job.ID]
					changed = true
				}
			}
		}
	}
}
