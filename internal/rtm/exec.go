package rtm

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// execMaxAttempts bounds the Exec retry loop: a transaction sacrificed this
// many times in a row indicates contention no backoff will fix, and the
// caller should hear about it.
const execMaxAttempts = 12

// Exec backoff shape: exponential from execBackoffBase, capped at
// execBackoffCap, with ±50% seeded jitter so synchronized victims desync.
const (
	execBackoffBase = 100 * time.Microsecond
	execBackoffCap  = 5 * time.Millisecond
)

// Exec runs fn inside a transaction of the named type: Begin, fn, Commit.
// When the transaction is sacrificed (ErrAborted — cycle victim or injected
// fault) or firm-deadline aborted (ErrDeadlineMissed), Exec retries with
// jittered exponential backoff, up to execMaxAttempts attempts, honouring
// ctx throughout. Every other error — including ErrCancelled and fn's own
// errors — aborts the transaction (a no-op when the failure already cleaned
// it up) and is returned as-is.
//
// fn must confine itself to the handle it is given and may be called
// multiple times; each invocation sees a fresh transaction.
func (m *Manager) Exec(ctx context.Context, name string, fn func(tx *Txn) error) error {
	var last error
	for attempt := 0; attempt < execMaxAttempts; attempt++ {
		if attempt > 0 {
			m.mu.Lock()
			m.stats.Retries++
			m.mu.Unlock()
			if err := m.backoff(ctx, attempt); err != nil {
				return err
			}
		}
		tx, err := m.Begin(ctx, name)
		if err != nil {
			if !retryable(err) {
				return err
			}
			last = err
			continue
		}
		err = fn(tx)
		if err == nil {
			err = tx.Commit(ctx)
		}
		if err == nil {
			return nil
		}
		tx.Abort()
		if !retryable(err) {
			return err
		}
		last = err
	}
	return fmt.Errorf("rtm: Exec %q gave up after %d attempts: %w", name, execMaxAttempts, last)
}

// retryable reports whether err is a sacrifice the caller did not cause and
// a fresh attempt can survive.
func retryable(err error) bool {
	return errors.Is(err, ErrAborted) || errors.Is(err, ErrDeadlineMissed)
}

// backoff sleeps for the attempt's jittered exponential delay, returning
// early with the context error if ctx dies first.
func (m *Manager) backoff(ctx context.Context, attempt int) error {
	d := execBackoffBase << (attempt - 1)
	if d > execBackoffCap {
		d = execBackoffCap
	}
	m.mu.Lock()
	// jitter in [0.5, 1.5): victims that lost the same cycle spread out.
	d = time.Duration(float64(d) * (0.5 + m.rng.Float64()))
	m.mu.Unlock()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
