package rtm

import (
	"context"
	"sync"
	"testing"
	"time"

	"pcpda/internal/fault"
	"pcpda/internal/txn"
)

// Lost-wakeup stress tests for the targeted-wakeup machinery in wait.go.
// Under the legacy condition-variable broadcast, a missed signal was masked
// by the next unrelated broadcast; with targeted wakeups a genuinely lost
// wake means a worker parks forever. These tests drive a thundering herd
// through the maximum-contention workload (every template reads AND writes
// the same four items, so every park/wake edge — lock waits, ceiling waits,
// commit waits, template slots — fires constantly) and demand full progress
// within a generous wall-clock budget. Run under -race they also certify the
// register-before-unlock handoff publishes safely.

// driveHerd runs `workers` goroutines, each committing txnsEach transactions
// of its own template, failing the test if the herd cannot finish before ctx
// expires (the signature of a lost wakeup: one worker parked with no one
// left to wake it).
func driveHerd(t *testing.T, m *Manager, set *txn.Set, workers, txnsEach int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tmpl := set.Templates[w%len(set.Templates)]
		wg.Add(1)
		go func(tmpl *txn.Template) {
			defer wg.Done()
			for i := 0; i < txnsEach; i++ {
				err := m.Exec(ctx, tmpl.Name, func(tx *Txn) error {
					for _, st := range tmpl.Steps {
						var err error
						if st.Kind == txn.ReadStep {
							_, err = tx.Read(ctx, st.Item)
						} else {
							err = tx.Write(ctx, st.Item, 1)
						}
						if err != nil {
							return err
						}
					}
					return nil
				})
				if err := tolerate(ctx, err); err != nil {
					t.Errorf("worker %s txn %d: %v", tmpl.Name, i, err)
					return
				}
			}
		}(tmpl)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		t.Fatalf("herd did not drain: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNoLostWakeups runs the herd with NO fault injection: PWakeup is zero,
// so there are no spurious broadcasts to paper over a dropped targeted wake.
// Every deny→grant transition must be carried by exactly the wake edges
// finish/refreshPri/resolveCycle emit.
func TestNoLostWakeups(t *testing.T) {
	const workers = 8
	set := benchHighSet(workers)
	m, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	txns := 400
	if testing.Short() {
		txns = 100
	}
	driveHerd(t, m, set, workers, txns)
}

// TestNoLostWakeupsUnderChaos repeats the herd with the fault injector
// aborting, cancelling and delaying transactions mid-flight (plus firm
// deadlines), so wake edges also fire from every failure path — and with
// injected spurious wakeups (fault.Wakeup), which must still reach every
// parked waiter through wakeAll.
func TestNoLostWakeupsUnderChaos(t *testing.T) {
	const workers = 6
	set := benchHighSet(workers)
	inj := fault.NewSeeded(fault.Config{
		Seed:    99,
		PDelay:  0.03,
		PWakeup: 0.03,
		PAbort:  0.02,
		PCancel: 0.02,
	})
	m, err := NewWithOptions(set, Options{Injector: inj, FirmDeadlines: true})
	if err != nil {
		t.Fatal(err)
	}
	txns := 250
	if testing.Short() {
		txns = 60
	}
	driveHerd(t, m, set, workers, txns)
}
