package rtm

import (
	"context"
	"testing"
	"time"

	"pcpda/internal/cc"
	"pcpda/internal/db"
	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

// cycleSet is the adversarial two-transaction shape that COULD close a
// commit-wait/lock-wait cycle if the locking conditions were weaker:
//
//	TH (high): Read(x), Write(y)
//	TL (low):  Write(x), Read(y)
//
// The tests below demonstrate that PCP-DA's own guards make the cycle
// unreachable in both interleavings — live, under free threading:
//
//   - If TH reads x (through TL's write lock) FIRST, then TL's read of y is
//     ceiling-blocked: TH's read lock on x raises Wceil(x) = P_TL into
//     TL's Sysceil, and LC3 fails because Wceil(y) = P_TH > P_TL. TL
//     simply waits until TH commits.
//   - If TL read-locks y FIRST, then TH's read of x is denied by Table 1:
//     DataRead(TL) ∩ WriteSet(TH) = {y} ≠ ∅. TH waits until TL commits.
//
// Either way one transaction finishes and unblocks the other; the
// cycle-breaking abort machinery stays cold (Aborts() == 0).
func cycleSet() (*txn.Set, rt.Item, rt.Item) {
	s := txn.NewSet("cycle")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	s.Add(&txn.Template{Name: "TH", Steps: []txn.Step{txn.Read(x), txn.Write(y)}})
	s.Add(&txn.Template{Name: "TL", Steps: []txn.Step{txn.Write(x), txn.Read(y)}})
	s.AssignByIndex()
	return s, x, y
}

func TestCycleGuardCeilingOrder(t *testing.T) {
	// TH's stale read first: TL's subsequent Read(y) must WAIT (ceiling),
	// not deadlock, and proceed after TH commits.
	s, x, y := cycleSet()
	m, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	c, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	tl, _ := m.Begin(c, "TL")
	if err := tl.Write(c, x, 1); err != nil {
		t.Fatal(err)
	}
	th, _ := m.Begin(c, "TH")
	if v, err := th.Read(c, x); err != nil || v != 0 {
		t.Fatalf("stale read: v=%v err=%v", v, err)
	}

	tlRead := make(chan error, 1)
	go func() {
		_, err := tl.Read(c, y)
		tlRead <- err
	}()
	waitBlocked(t, m, tl)
	select {
	case err := <-tlRead:
		t.Fatalf("TL's read must be ceiling-blocked, got %v", err)
	default:
	}

	// TH runs to completion; TL then proceeds and commits.
	if err := th.Write(c, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := th.Commit(c); err != nil {
		t.Fatal(err)
	}
	if err := <-tlRead; err != nil {
		t.Fatalf("TL read after TH commit: %v", err)
	}
	if err := tl.Commit(c); err != nil {
		t.Fatal(err)
	}
	if m.Aborts() != 0 {
		t.Fatalf("cycle breaker fired %d times; the guards should prevent that", m.Aborts())
	}
	rep := m.History().Check()
	if !rep.Serializable || !rep.CommitOrderOK {
		t.Fatalf("history: %v", rep.Violations)
	}
	// TL read y AFTER TH's commit: it must see TH's value.
	if v := m.ReadCommitted(y); v != 2 {
		t.Fatalf("y = %v", v)
	}
}

func TestCycleGuardTable1Order(t *testing.T) {
	// TL read-locks y first: TH's read of the write-locked x must WAIT
	// (Table 1), not slip through into a cycle.
	s, x, y := cycleSet()
	m, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	c, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	tl, _ := m.Begin(c, "TL")
	if err := tl.Write(c, x, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Read(c, y); err != nil {
		t.Fatal(err)
	}
	th, _ := m.Begin(c, "TH")

	thRead := make(chan error, 1)
	var got db.Value
	go func() {
		v, err := th.Read(c, x)
		got = v
		thRead <- err
	}()
	waitBlocked(t, m, th)
	select {
	case err := <-thRead:
		t.Fatalf("TH's read must be blocked by Table 1, got %v", err)
	default:
	}

	if err := tl.Commit(c); err != nil {
		t.Fatalf("TL has no stale readers (TH never got the lock): %v", err)
	}
	if err := <-thRead; err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("TH read %v, want TL's committed 1", got)
	}
	if err := th.Write(c, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := th.Commit(c); err != nil {
		t.Fatal(err)
	}
	if m.Aborts() != 0 {
		t.Fatalf("cycle breaker fired %d times", m.Aborts())
	}
	rep := m.History().Check()
	if !rep.Serializable || !rep.CommitOrderOK {
		t.Fatalf("history: %v", rep.Violations)
	}
}

// TestResolveCycleUnit exercises the defensive cycle breaker directly by
// fabricating a wait cycle in manager state — unreachable through the
// public API (the tests above show the guards prevent it), but kept as
// defense-in-depth for the free-threading deviation documented in the
// package comment.
func TestResolveCycleUnit(t *testing.T) {
	s, _, _ := cycleSet()
	m, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	c := context.Background()
	a, _ := m.Begin(c, "TH")
	b, _ := m.Begin(c, "TL")

	m.mu.Lock()
	a.job.Status = cc.Blocked
	a.job.Blockers = []rt.JobID{b.job.ID}
	b.job.Status = cc.Blocked
	b.job.Blockers = []rt.JobID{a.job.ID}
	victim := m.resolveCycle(a)
	m.mu.Unlock()
	if victim != b {
		t.Fatalf("victim = %v, want the lower-priority TL", victim)
	}

	// No cycle: blocker chain ends at a running transaction.
	m.mu.Lock()
	b.job.Status = cc.Ready
	b.job.Blockers = nil
	if v := m.resolveCycle(a); v != nil {
		m.mu.Unlock()
		t.Fatalf("no cycle but victim %v", v)
	}
	a.job.Status = cc.Ready
	a.job.Blockers = nil
	m.mu.Unlock()
	a.Abort()
	b.Abort()
}

// waitBlocked polls until tx's job is observed Blocked (under the manager
// lock), failing the test after a deadline.
func waitBlocked(t *testing.T, m *Manager, tx *Txn) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m.mu.Lock()
		blocked := tx.job.Status == cc.Blocked
		m.mu.Unlock()
		if blocked {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("transaction never blocked")
}
