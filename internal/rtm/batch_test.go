package rtm

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pcpda/internal/db"
	"pcpda/internal/rt"
	"pcpda/internal/txn"
	"pcpda/internal/workload"
)

// batchSet builds n single-write templates B0..B<n-1> over a shared item
// pool, the shape the server's admission queue produces.
func batchSet(t *testing.T, n int) *txn.Set {
	t.Helper()
	s := txn.NewSet("batch")
	items := make([]rt.Item, n)
	for i := range items {
		items[i] = s.Catalog.Intern(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		s.Add(&txn.Template{Name: "B" + string(rune('0'+i)), Steps: []txn.Step{
			txn.Read(items[(i+1)%n]), txn.Write(items[i]),
		}})
	}
	s.AssignByIndex()
	return s
}

// TestBeginBatchMatchesSequential is the property test: for random distinct
// name subsets in random order, one BeginBatch is observably equivalent to
// k sequential Begins on a twin manager — same live count, same counters,
// same per-handle behaviour, same committed state, clean invariants.
func TestBeginBatchMatchesSequential(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		set := batchSet(t, n)
		batched, err := New(set)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := New(batchSet(t, n))
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(n)
		names := make([]string, 0, k)
		for _, i := range rng.Perm(n)[:k] {
			names = append(names, set.Templates[i].Name)
		}
		c := ctx(t)

		got, err := batched.BeginBatch(c, names)
		if err != nil {
			t.Fatalf("trial %d: BeginBatch(%v): %v", trial, names, err)
		}
		want := make([]*Txn, 0, k)
		for _, name := range names {
			tx, err := seq.Begin(c, name)
			if err != nil {
				t.Fatalf("trial %d: Begin(%s): %v", trial, name, err)
			}
			want = append(want, tx)
		}

		if len(got) != k {
			t.Fatalf("trial %d: %d handles, want %d", trial, len(got), k)
		}
		ids := make(map[rt.JobID]bool, k)
		for i, tx := range got {
			if tx == nil {
				t.Fatalf("trial %d: nil handle at %d", trial, i)
			}
			if name := tx.Template().Name; name != names[i] {
				t.Fatalf("trial %d: handle %d is %s, want %s", trial, i, name, names[i])
			}
			if ids[tx.ID()] {
				t.Fatalf("trial %d: duplicate job id %d", trial, tx.ID())
			}
			ids[tx.ID()] = true
		}
		bs, ss := batched.Stats(), seq.Stats()
		if bs.Begins != ss.Begins || bs.Live != ss.Live || bs.Live != k {
			t.Fatalf("trial %d: stats diverge: batch %+v seq %+v", trial, bs, ss)
		}
		if bs.Batches != 1 {
			t.Fatalf("trial %d: Batches = %d, want 1", trial, bs.Batches)
		}

		// Drive both sides through identical work and compare the outcome.
		for i := range got {
			item := set.Templates[i%n].Steps[1].Item
			for j, tx := range []*Txn{got[i], want[i]} {
				tmpl := tx.Template()
				wr := tmpl.Steps[1].Item
				if err := tx.Write(c, wr, db.Value(100+i)); err != nil {
					t.Fatalf("trial %d side %d write: %v", trial, j, err)
				}
				if err := tx.Commit(c); err != nil {
					t.Fatalf("trial %d side %d commit: %v", trial, j, err)
				}
			}
			_ = item
		}
		for i := 0; i < n; i++ {
			it := set.Templates[i].Steps[1].Item
			if bv, sv := batched.ReadCommitted(it), seq.ReadCommitted(it); bv != sv {
				t.Fatalf("trial %d: item %d: batched %v, sequential %v", trial, it, bv, sv)
			}
		}
		for _, m := range []*Manager{batched, seq} {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if rep := m.History().Check(); !rep.Serializable {
				t.Fatalf("trial %d: %+v", trial, rep.Violations)
			}
		}
	}
}

func TestBeginBatchEmpty(t *testing.T) {
	m, _ := New(batchSet(t, 2))
	got, err := m.BeginBatch(ctx(t), nil)
	if got != nil || err != nil {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
	if s := m.Stats(); s.Batches != 0 {
		t.Fatalf("empty batch counted: %+v", s)
	}
}

func TestBeginBatchRejectsUnknownAndDuplicate(t *testing.T) {
	m, _ := New(batchSet(t, 3))
	c := ctx(t)
	if _, err := m.BeginBatch(c, []string{"B0", "nope"}); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := m.BeginBatch(c, []string{"B0", "B1", "B0"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// Rejection happens before any admission: nothing to roll back.
	if s := m.Stats(); s.Begins != 0 || s.Aborts != 0 || s.Live != 0 {
		t.Fatalf("failed validation touched the manager: %+v", s)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBeginBatchParksOnBusySlot: a batch naming a template with a live
// instance parks until that instance finishes, then admits the whole batch.
func TestBeginBatchParksOnBusySlot(t *testing.T) {
	m, _ := New(batchSet(t, 3))
	c := ctx(t)
	hold, err := m.Begin(c, "B1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []*Txn, 1)
	go func() {
		txs, err := m.BeginBatch(c, []string{"B2", "B1", "B0"})
		if err != nil {
			t.Error(err)
		}
		done <- txs
	}()
	// The batch must be parked on B1's slot, not done.
	deadline := time.Now().Add(time.Second)
	for m.ParkedWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never parked on the busy slot")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("batch admitted while B1 was live")
	default:
	}
	hold.Abort()
	txs := <-done
	if len(txs) != 3 {
		t.Fatalf("%d handles", len(txs))
	}
	for _, tx := range txs {
		tx.Abort()
	}
	if w := m.ParkedWaiters(); w != 0 {
		t.Fatalf("%d waiters leaked", w)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBeginBatchCancelRollsBack: cancelling a batch parked mid-way aborts
// the instances it had already admitted — all-or-nothing.
func TestBeginBatchCancelRollsBack(t *testing.T) {
	m, _ := New(batchSet(t, 3))
	bg := ctx(t)
	hold, err := m.Begin(bg, "B2") // highest template ID: admitted last
	if err != nil {
		t.Fatal(err)
	}
	c, cancel := context.WithCancel(bg)
	errCh := make(chan error, 1)
	go func() {
		// B0 and B1 admit (template-ID order), then the batch parks on B2.
		txs, err := m.BeginBatch(c, []string{"B2", "B0", "B1"})
		if err == nil {
			for _, tx := range txs {
				tx.Abort()
			}
		}
		errCh <- err
	}()
	deadline := time.Now().Add(time.Second)
	for m.ParkedWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled batch: %v, want ErrCancelled", err)
	}
	s := m.Stats()
	if s.Live != 1 { // only the held B2 instance survives
		t.Fatalf("Live = %d after rollback, want 1", s.Live)
	}
	if s.Aborts < 2 {
		t.Fatalf("Aborts = %d, want >= 2 (rolled-back admissions)", s.Aborts)
	}
	if s.Batches != 0 {
		t.Fatalf("failed batch counted: Batches = %d", s.Batches)
	}
	hold.Abort()
	if w := m.ParkedWaiters(); w != 0 {
		t.Fatalf("%d waiters leaked", w)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBeginBatchConcurrentNoDeadlock: overlapping batches with reversed
// name orders must not deadlock — admission follows global template-ID
// order, not request order. Run with -race.
func TestBeginBatchConcurrentNoDeadlock(t *testing.T) {
	set, err := workload.Generate(workload.Config{
		N: 8, Items: 12, Utilization: 0.5,
		PeriodMin: 40, PeriodMax: 400,
		OpsMin: 2, OpsMax: 4, WriteProb: 0.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(set.Templates))
	for i, tmpl := range set.Templates {
		names[i] = tmpl.Name
	}
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				k := 1 + rng.Intn(4)
				batch := make([]string, 0, k)
				for _, j := range rng.Perm(len(names))[:k] {
					batch = append(batch, names[j])
				}
				txs, err := m.BeginBatch(c, batch)
				if err != nil {
					t.Error(err)
					return
				}
				for _, tx := range txs {
					tx.Abort()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if w := m.ParkedWaiters(); w != 0 {
		t.Fatalf("%d waiters leaked", w)
	}
	if live := m.Stats().Live; live != 0 {
		t.Fatalf("%d transactions leaked", live)
	}
}

func TestManagerSetAccessor(t *testing.T) {
	s := batchSet(t, 2)
	m, _ := New(s)
	if m.Set() != s {
		t.Fatal("Set() did not return the constructor's set")
	}
}
