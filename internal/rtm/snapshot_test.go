package rtm

import (
	"errors"
	"testing"

	"pcpda/internal/db"
	"pcpda/internal/history"
	"pcpda/internal/rt"
)

func TestReadOnlyBasics(t *testing.T) {
	s, x, y := demoSet(t)
	m, _ := New(s)
	c := ctx(t)

	// Before any commit: initial state.
	ro, err := m.BeginReadOnly(c)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ro.Read(c, x); err != nil || v != 0 {
		t.Fatalf("initial snapshot read = (%v, %v)", v, err)
	}
	if err := ro.Write(c, x, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on RO txn: %v, want ErrReadOnly", err)
	}
	if err := ro.Commit(c); err != nil {
		t.Fatal(err)
	}
	if err := ro.Commit(c); !errors.Is(err, ErrClosed) {
		t.Fatalf("double commit: %v, want ErrClosed", err)
	}
	if _, err := ro.Read(c, x); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after commit: %v, want ErrClosed", err)
	}

	// Snapshot isolation: a transaction begun before a commit keeps
	// reading the old state; one begun after sees the new state.
	before, _ := m.BeginReadOnly(c)
	tx, err := m.Begin(c, "updater")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(c, x, 42); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(c, y, 43); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(c); err != nil {
		t.Fatal(err)
	}
	if v, err := before.Read(c, x); err != nil || v != 0 {
		t.Fatalf("pre-commit snapshot sees (%v, %v), want old state", v, err)
	}
	after, _ := m.BeginReadOnly(c)
	if v, err := after.Read(c, x); err != nil || v != 42 {
		t.Fatalf("post-commit snapshot sees (%v, %v), want 42", v, err)
	}
	before.Abort()
	after.Abort()
	after.Abort() // idempotent

	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.ROBegins != 3 || st.ROCommits != 1 || st.ROAborts != 2 {
		t.Fatalf("RO counters = begins %d commits %d aborts %d", st.ROBegins, st.ROCommits, st.ROAborts)
	}
}

// TestReadOnlyZeroLockTraffic is the isolation proof at the manager API:
// a read-only phase moves neither the logical clock (ticked by every
// mutex-held manager operation) nor the lock-table ops counter.
func TestReadOnlyZeroLockTraffic(t *testing.T) {
	s, x, y := demoSet(t)
	m, _ := New(s)
	c := ctx(t)
	tx, err := m.Begin(c, "updater")
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Write(c, x, 7)
	_ = tx.Write(c, y, 8)
	if err := tx.Commit(c); err != nil {
		t.Fatal(err)
	}

	before := m.Stats()
	const txns = 500
	for i := 0; i < txns; i++ {
		ro, err := m.BeginReadOnly(c)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := ro.Read(c, x); err != nil || v != 7 {
			t.Fatalf("snapshot read = (%v, %v)", v, err)
		}
		if v, err := ro.Read(c, y); err != nil || v != 8 {
			t.Fatalf("snapshot read = (%v, %v)", v, err)
		}
		if err := ro.Commit(c); err != nil {
			t.Fatal(err)
		}
	}
	after := m.Stats()
	if d := after.Clock - before.Clock; d != 0 {
		t.Errorf("clock moved by %d during a pure read-only phase (mutex-held operations!)", d)
	}
	if d := after.LockTableOps - before.LockTableOps; d != 0 {
		t.Errorf("lock table mutated %d times during a pure read-only phase", d)
	}
	if d := after.Begins - before.Begins; d != 0 {
		t.Errorf("update begins moved by %d", d)
	}
	if d := after.ROCommits - before.ROCommits; d != txns {
		t.Errorf("ro commits moved by %d, want %d", d, txns)
	}
	if d := after.ROReads - before.ROReads; d != 2*txns {
		t.Errorf("ro reads moved by %d, want %d", d, 2*txns)
	}
}

// TestSnapshotReadsMatchHistory is the property test: every read-only
// transaction's observations are exactly the committed state at its
// snapshot tick, validated by history.CheckSnapshot after quiescence.
func TestSnapshotReadsMatchHistory(t *testing.T) {
	s, x, y := demoSet(t)
	m, _ := New(s)
	c := ctx(t)

	type obs struct {
		snap  rt.Ticks
		reads []history.SnapshotRead
	}
	var all []obs

	const commits = 40
	for i := 0; i < commits; i++ {
		ro, err := m.BeginReadOnly(c)
		if err != nil {
			t.Fatal(err)
		}
		ob := obs{snap: ro.Snapshot()}
		_, verX, fromX, err := ro.ReadVersion(c, x)
		if err != nil {
			t.Fatal(err)
		}
		_, verY, fromY, err := ro.ReadVersion(c, y)
		if err != nil {
			t.Fatal(err)
		}
		ob.reads = append(ob.reads,
			history.SnapshotRead{Item: x, Ver: verX, From: fromX},
			history.SnapshotRead{Item: y, Ver: verY, From: fromY})
		if err := ro.Commit(c); err != nil {
			t.Fatal(err)
		}
		all = append(all, ob)

		tx, err := m.Begin(c, "updater")
		if err != nil {
			t.Fatal(err)
		}
		_ = tx.Write(c, x, db.Value(i))
		_ = tx.Write(c, y, db.Value(i*2))
		if err := tx.Commit(c); err != nil {
			t.Fatal(err)
		}
	}
	hist := m.History()
	for _, ob := range all {
		if vs := hist.CheckSnapshot(ob.snap, ob.reads); len(vs) > 0 {
			t.Fatalf("snapshot at tick %d: %s", ob.snap, vs[0].Detail)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotEvictionRetry pins a snapshot, hammers one item past the
// chain bound, and demands the pinned reader gets the typed retryable
// refusal while a fresh transaction succeeds — the retry-is-idempotent
// contract at the manager API.
func TestSnapshotEvictionRetry(t *testing.T) {
	s, x, y := demoSet(t)
	m, _ := New(s)
	c := ctx(t)

	tx, _ := m.Begin(c, "updater")
	_ = tx.Write(c, x, 1)
	_ = tx.Write(c, y, 1)
	if err := tx.Commit(c); err != nil {
		t.Fatal(err)
	}
	pinned, err := m.BeginReadOnly(c)
	if err != nil {
		t.Fatal(err)
	}
	limit := m.store.ChainLimit()
	for i := 0; i < limit+4; i++ {
		tx, err := m.Begin(c, "updater")
		if err != nil {
			t.Fatal(err)
		}
		_ = tx.Write(c, x, db.Value(100+i))
		_ = tx.Write(c, y, db.Value(100+i))
		if err := tx.Commit(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pinned.Read(c, x); !errors.Is(err, db.ErrSnapshotEvicted) {
		t.Fatalf("pinned read past chain bound: %v, want ErrSnapshotEvicted", err)
	}
	// The handle auto-aborted; a fresh BEGIN (the retry) reads cleanly.
	retry, err := m.BeginReadOnly(c)
	if err != nil {
		t.Fatal(err)
	}
	v, err := retry.Read(c, x)
	if err != nil {
		t.Fatal(err)
	}
	if v != db.Value(100+limit+3) {
		t.Fatalf("retry read = %v, want %v", v, 100+limit+3)
	}
	if err := retry.Commit(c); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.ROEvictions != 1 {
		t.Fatalf("ROEvictions = %d, want 1", st.ROEvictions)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosReadOnlyMix runs the chaos harness with a read-only mix: RO
// snapshot transactions race the faulted update hammer, and every
// committed one is validated against the history at its snapshot tick.
func TestChaosReadOnlyMix(t *testing.T) {
	schedules := 200
	if testing.Short() {
		schedules = 40
	}
	set := chaosSet(t, 8181, 50, 500)
	rep, err := RunChaos(set, ChaosConfig{
		Schedules:    schedules,
		Seed:         20260807,
		Workers:      4,
		Iters:        4,
		PDelay:       0.2,
		PWakeup:      0.2,
		PAbort:       0.1,
		PCancel:      0.1,
		ReadOnlyProb: 0.4,
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
	if rep.ROCommits == 0 {
		t.Fatalf("chaos mix committed no read-only transactions:\n%s", rep)
	}
	if rep.ROReadsChecked == 0 {
		t.Fatalf("chaos mix validated no snapshot reads:\n%s", rep)
	}
	t.Logf("%s", rep)
}
