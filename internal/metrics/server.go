package metrics

import "sync/atomic"

// ServerCounters is the live counter set for the network transaction
// service. All fields are atomics so sessions update them without
// coordinating; Snapshot gives a coherent-enough point-in-time copy for
// the daemon's /stats endpoint (counters are monotone, so a snapshot
// torn across concurrent increments still never goes backwards).
//
// Contains atomics: must be used through a pointer, never copied.
type ServerCounters struct {
	Accepted           atomic.Int64 // transactions admitted (BEGIN granted)
	ROAccepted         atomic.Int64 // read-only snapshot transactions begun (bypass admission)
	RejectedOverload   atomic.Int64 // BEGINs refused because the admission queue was full
	RejectedConnLimit  atomic.Int64 // connections refused at accept time by the -max-conns limit
	RejectedInfeasible atomic.Int64 // BEGINs refused because the queue-wait estimate already broke their firm deadline
	Shed               atomic.Int64 // BEGINs shed (displaced from or refused by the queue) as lowest-priority work past the high-water mark
	AutoAborted        atomic.Int64 // live transactions aborted because their session disconnected
	DrainAborted       atomic.Int64 // live transactions aborted by server drain
	WatchdogTrips      atomic.Int64 // transactions force-aborted by the stuck-transaction watchdog
	WatchdogAuditFails atomic.Int64 // CheckInvariants failures observed after a watchdog trip
	SlowClientKills    atomic.Int64 // sessions torn down because a reply flush hit the write deadline
	SessionsOpened     atomic.Int64 // connections that completed the hello handshake
	SessionsClosed     atomic.Int64 // sessions torn down (any reason)
	PipelinedSessions  atomic.Int64 // sessions that sent at least one tagged (wire v3) frame
	ResponseFlushes    atomic.Int64 // writer wakeups that wrote at least one response
	ResponsesFlushed   atomic.Int64 // responses written (ResponsesFlushed/ResponseFlushes = mean flush batch)
	StolenAdmissions   atomic.Int64 // admission requests popped from a sibling shard's queue by an idle dispatcher
	InflightHWM        atomic.Int64 // highest per-session inflight (requests read, response not yet flushed) seen on any session
	BytesIn            atomic.Int64 // payload bytes read off the wire
	BytesOut           atomic.Int64 // payload bytes written to the wire
}

// ServerSnapshot is a plain-value copy of ServerCounters, safe to copy,
// compare and marshal.
type ServerSnapshot struct {
	Accepted           int64 `json:"accepted"`
	ROAccepted         int64 `json:"ro_accepted"`
	RejectedOverload   int64 `json:"rejected_overload"`
	RejectedConnLimit  int64 `json:"rejected_conn_limit"`
	RejectedInfeasible int64 `json:"rejected_infeasible"`
	Shed               int64 `json:"shed"`
	AutoAborted        int64 `json:"auto_aborted"`
	DrainAborted       int64 `json:"drain_aborted"`
	WatchdogTrips      int64 `json:"watchdog_trips"`
	WatchdogAuditFails int64 `json:"watchdog_audit_fails"`
	SlowClientKills    int64 `json:"slow_client_kills"`
	SessionsOpened     int64 `json:"sessions_opened"`
	SessionsClosed     int64 `json:"sessions_closed"`
	PipelinedSessions  int64 `json:"pipelined_sessions"`
	ResponseFlushes    int64 `json:"response_flushes"`
	ResponsesFlushed   int64 `json:"responses_flushed"`
	StolenAdmissions   int64 `json:"stolen_admissions"`
	InflightHWM        int64 `json:"inflight_hwm"`
	BytesIn            int64 `json:"bytes_in"`
	BytesOut           int64 `json:"bytes_out"`
}

// Snapshot reads every counter once.
func (c *ServerCounters) Snapshot() ServerSnapshot {
	return ServerSnapshot{
		Accepted:           c.Accepted.Load(),
		ROAccepted:         c.ROAccepted.Load(),
		RejectedOverload:   c.RejectedOverload.Load(),
		RejectedConnLimit:  c.RejectedConnLimit.Load(),
		RejectedInfeasible: c.RejectedInfeasible.Load(),
		Shed:               c.Shed.Load(),
		AutoAborted:        c.AutoAborted.Load(),
		DrainAborted:       c.DrainAborted.Load(),
		WatchdogTrips:      c.WatchdogTrips.Load(),
		WatchdogAuditFails: c.WatchdogAuditFails.Load(),
		SlowClientKills:    c.SlowClientKills.Load(),
		SessionsOpened:     c.SessionsOpened.Load(),
		SessionsClosed:     c.SessionsClosed.Load(),
		PipelinedSessions:  c.PipelinedSessions.Load(),
		ResponseFlushes:    c.ResponseFlushes.Load(),
		ResponsesFlushed:   c.ResponsesFlushed.Load(),
		StolenAdmissions:   c.StolenAdmissions.Load(),
		InflightHWM:        c.InflightHWM.Load(),
		BytesIn:            c.BytesIn.Load(),
		BytesOut:           c.BytesOut.Load(),
	}
}

// SessionsLive returns opened minus closed — the number of sessions
// currently attached.
func (c *ServerCounters) SessionsLive() int64 {
	// Closed is loaded first so a session closing between the two loads can
	// only overcount, never yield a negative live figure.
	closed := c.SessionsClosed.Load()
	return c.SessionsOpened.Load() - closed
}

// MaxInt64 raises a to at least v (a monotone high-water mark update).
func MaxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
