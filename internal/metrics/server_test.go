package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestServerCountersSnapshot(t *testing.T) {
	var c ServerCounters
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Accepted.Add(1)
				c.BytesIn.Add(10)
				c.BytesOut.Add(20)
				c.SessionsOpened.Add(1)
				c.SessionsClosed.Add(1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Accepted != workers*per || s.BytesIn != 10*workers*per || s.BytesOut != 20*workers*per {
		t.Fatalf("snapshot lost updates: %+v", s)
	}
	if live := c.SessionsLive(); live != 0 {
		t.Fatalf("SessionsLive = %d, want 0", live)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back ServerSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("JSON round trip: %+v != %+v", back, s)
	}
}
