package metrics

import (
	"strings"
	"testing"

	"pcpda/internal/papercases"
	"pcpda/internal/pcpda"
	"pcpda/internal/rwpcp"
	"pcpda/internal/sched"
)

func run(t *testing.T, proto string) *sched.Result {
	t.Helper()
	set := papercases.Example3()
	var k *sched.Kernel
	var err error
	switch proto {
	case "pcpda":
		k, err = sched.New(set, pcpda.New(), sched.Config{Horizon: papercases.Example3Horizon})
	case "rwpcp":
		k, err = sched.New(set, rwpcp.New(), sched.Config{Horizon: papercases.Example3Horizon})
	}
	if err != nil {
		t.Fatal(err)
	}
	return k.Run()
}

func TestPerTxnExample3(t *testing.T) {
	res := run(t, "rwpcp")
	per := PerTxn(res)
	if len(per) != 2 {
		t.Fatalf("rows = %d", len(per))
	}
	t1 := per[0]
	if t1.Name != "T1" || t1.Jobs != 2 {
		t.Fatalf("t1 = %+v", t1)
	}
	if t1.Misses != 1 {
		t.Fatalf("T1 misses = %d, want 1", t1.Misses)
	}
	if t1.TotalBlocked != 4 || t1.MaxBlocked != 4 {
		t.Fatalf("T1 blocking = %d/%d, want 4/4", t1.TotalBlocked, t1.MaxBlocked)
	}
	// First instance responds in 6 ticks (1→7), second in 3 (6→9).
	if t1.Completed != 2 || t1.TotalResponse != 9 || t1.MaxResponse != 6 {
		t.Fatalf("T1 responses = %+v", t1)
	}
	if got := t1.AvgResponse(); got != 4.5 {
		t.Fatalf("avg = %v", got)
	}
}

func TestAvgResponseZeroWhenNothingCompleted(t *testing.T) {
	s := TxnStats{}
	if s.AvgResponse() != 0 {
		t.Fatal("empty stats must average 0")
	}
}

func TestSummarizeExample3(t *testing.T) {
	da := Summarize(run(t, "pcpda"))
	rw := Summarize(run(t, "rwpcp"))
	if da.Protocol != "PCP-DA" || rw.Protocol != "RW-PCP" {
		t.Fatalf("protocols: %s %s", da.Protocol, rw.Protocol)
	}
	if da.Misses != 0 || rw.Misses != 1 {
		t.Fatalf("misses: %d %d", da.Misses, rw.Misses)
	}
	if da.TotalBlocked != 0 || rw.TotalBlocked != 4 {
		t.Fatalf("blocked: %d %d", da.TotalBlocked, rw.TotalBlocked)
	}
	// Miss ratio: T1 releases 2 deadlined jobs; T2 is one-shot with no
	// deadline. RW-PCP misses one of two.
	if rw.MissRatio != 0.5 {
		t.Fatalf("miss ratio = %v", rw.MissRatio)
	}
	if !da.Serializable || !da.CommitOrderOK {
		t.Fatalf("da history flags: %+v", da)
	}
	if !rw.Serializable {
		t.Fatalf("rw history flags: %+v", rw)
	}
	if da.Deadlocked || rw.Deadlocked {
		t.Fatal("no deadlocks expected")
	}
}

func TestTableRendering(t *testing.T) {
	sums := []Summary{Summarize(run(t, "pcpda")), Summarize(run(t, "rwpcp"))}
	tbl := Table(sums)
	for _, frag := range []string{"protocol", "PCP-DA", "RW-PCP", "ok"} {
		if !strings.Contains(tbl, frag) {
			t.Errorf("table missing %q:\n%s", frag, tbl)
		}
	}
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want header+2", len(lines))
	}
	bad := Summary{Protocol: "X", Serializable: false, Deadlocked: true}
	tbl = Table([]Summary{bad})
	if !strings.Contains(tbl, "VIOLATED") || !strings.Contains(tbl, "YES") {
		t.Errorf("violation markers missing:\n%s", tbl)
	}
}

func TestTopContended(t *testing.T) {
	res := run(t, "rwpcp") // Example 3: T1 blocked on x for 4 ticks
	top := TopContended(res, 0)
	if len(top) == 0 {
		t.Fatal("no contention recorded")
	}
	if top[0].Name != "x" || top[0].Blocked != 4 {
		t.Fatalf("top = %+v, want x with 4 ticks", top[0])
	}
	// Truncation.
	if got := TopContended(res, 1); len(got) != 1 {
		t.Fatalf("truncated = %d entries", len(got))
	}
	// PCP-DA run has no blocking at all on Example 3.
	if got := TopContended(run(t, "pcpda"), 0); len(got) != 0 {
		t.Fatalf("PCP-DA contention = %+v, want none", got)
	}
}
