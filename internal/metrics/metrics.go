// Package metrics aggregates simulation results into the statistics the
// experiments report: per-transaction blocking and response times, deadline
// miss ratios, restart counts, and serializability verdicts.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"pcpda/internal/rt"
	"pcpda/internal/sched"
)

// TxnStats aggregates all jobs of one transaction template in a run.
type TxnStats struct {
	Name      string
	Jobs      int
	Completed int
	Misses    int
	Restarts  int

	TotalBlocked rt.Ticks // ticks spent blocked, summed over jobs
	MaxBlocked   rt.Ticks // worst single-job blocking
	TotalInv     rt.Ticks // effective (priority-inversion) blocking
	MaxInv       rt.Ticks

	TotalResponse rt.Ticks // summed over completed jobs
	MaxResponse   rt.Ticks
}

// AvgResponse returns the mean response time of completed jobs (0 if none).
func (s TxnStats) AvgResponse() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.TotalResponse) / float64(s.Completed)
}

// PerTxn aggregates a run per template, in set order.
func PerTxn(res *sched.Result) []TxnStats {
	out := make([]TxnStats, len(res.Set.Templates))
	for i, tmpl := range res.Set.Templates {
		out[i].Name = tmpl.Name
	}
	for _, j := range res.Jobs {
		s := &out[j.Tmpl.ID]
		s.Jobs++
		s.Restarts += j.Restarts
		s.TotalBlocked += j.BlockedTicks
		if j.BlockedTicks > s.MaxBlocked {
			s.MaxBlocked = j.BlockedTicks
		}
		s.TotalInv += j.InvBlockTicks
		if j.InvBlockTicks > s.MaxInv {
			s.MaxInv = j.InvBlockTicks
		}
		if j.Missed() {
			s.Misses++
		}
		if r := j.ResponseTime(); r >= 0 {
			s.Completed++
			s.TotalResponse += r
			if r > s.MaxResponse {
				s.MaxResponse = r
			}
		}
	}
	return out
}

// Summary condenses one run for cross-protocol comparison tables.
type Summary struct {
	Protocol  string
	Jobs      int
	Committed int
	Misses    int
	Aborts    int
	Restarts  int

	MissRatio    float64 // misses / jobs with a deadline
	TotalBlocked rt.Ticks
	MaxBlocked   rt.Ticks
	TotalInv     rt.Ticks
	AvgResponse  float64
	MaxSysceil   rt.Priority

	Deadlocked    bool
	Serializable  bool
	CommitOrderOK bool
}

// Summarize builds the summary, including the history check.
func Summarize(res *sched.Result) Summary {
	s := Summary{
		Protocol:   res.Protocol,
		Jobs:       len(res.Jobs),
		Committed:  res.Committed,
		Misses:     res.Misses,
		Aborts:     res.Aborts,
		Restarts:   res.Restarts,
		MaxSysceil: res.MaxSysceil,
		Deadlocked: res.Deadlocked,
	}
	deadlined := 0
	var totalResp rt.Ticks
	completed := 0
	for _, j := range res.Jobs {
		if j.AbsDeadline > 0 {
			deadlined++
		}
		s.TotalBlocked += j.BlockedTicks
		if j.BlockedTicks > s.MaxBlocked {
			s.MaxBlocked = j.BlockedTicks
		}
		s.TotalInv += j.InvBlockTicks
		if r := j.ResponseTime(); r >= 0 {
			completed++
			totalResp += r
		}
	}
	if deadlined > 0 {
		s.MissRatio = float64(s.Misses) / float64(deadlined)
	}
	if completed > 0 {
		s.AvgResponse = float64(totalResp) / float64(completed)
	}
	rep := res.History.Check()
	s.Serializable = rep.Serializable
	s.CommitOrderOK = rep.CommitOrderOK
	return s
}

// Contention is one item's share of the run's blocked time.
type Contention struct {
	Item    rt.Item
	Name    string
	Blocked rt.Ticks
}

// TopContended ranks the items jobs waited for, most-blocked first,
// truncated to n entries (n <= 0 returns all). Ties break by item id so
// the ranking is deterministic.
func TopContended(res *sched.Result, n int) []Contention {
	out := make([]Contention, 0, len(res.ItemBlocked))
	for it, ticks := range res.ItemBlocked {
		out = append(out, Contention{Item: it, Name: res.Set.Catalog.Name(it), Blocked: ticks})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocked != out[j].Blocked {
			return out[i].Blocked > out[j].Blocked
		}
		return out[i].Item < out[j].Item
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Table renders summaries as an aligned text table, one row per protocol.
func Table(sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %6s %6s %7s %8s %8s %8s %9s %6s\n",
		"protocol", "jobs", "commit", "miss", "restart",
		"blocked", "maxblk", "avgresp", "serializ", "dlock")
	for _, s := range sums {
		ser := "ok"
		if !s.Serializable {
			ser = "VIOLATED"
		}
		dl := "no"
		if s.Deadlocked {
			dl = "YES"
		}
		fmt.Fprintf(&b, "%-12s %6d %6d %6d %7d %8d %8d %8.2f %9s %6s\n",
			s.Protocol, s.Jobs, s.Committed, s.Misses, s.Restarts,
			s.TotalBlocked, s.MaxBlocked, s.AvgResponse, ser, dl)
	}
	return b.String()
}
