package naiveda

import (
	"testing"

	"pcpda/internal/cctest"
	"pcpda/internal/papercases"
	"pcpda/internal/pcpda"
	"pcpda/internal/rt"
	"pcpda/internal/sched"
	"pcpda/internal/txn"
)

func TestCond2GrantsWhatPCPDARefuses(t *testing.T) {
	// Example 5's fatal grant: TH read-locks y (P_H ≥ Wceil(y) = P_L) even
	// though T* = TL will write y.
	s := papercases.Example5()
	th, tl := s.ByName("TH"), s.ByName("TL")
	x, _ := s.Catalog.Lookup("x")
	y, _ := s.Catalog.Lookup("y")

	p := New()
	p.Init(s, txn.ComputeCeilings(s))
	env := cctest.NewEnv()
	jh := env.AddJob(0, th)
	jl := env.AddJob(1, tl)
	env.ReadLock(jl.ID, x)

	dec := p.Request(env, jh, y, rt.Read)
	if !dec.Granted || dec.Rule != "cond2" {
		t.Fatalf("naive cond2 should grant: %+v", dec)
	}

	// PCP-DA refuses the same request (LC3's WriteSet(T*) safeguard).
	da := pcpda.New()
	da.Init(s, txn.ComputeCeilings(s))
	if dec := da.Request(env, jh, y, rt.Read); dec.Granted {
		t.Fatalf("PCP-DA must refuse: %+v", dec)
	}
}

func TestCond1Grant(t *testing.T) {
	s := papercases.Example5()
	p := New()
	p.Init(s, txn.ComputeCeilings(s))
	env := cctest.NewEnv()
	jl := env.AddJob(1, s.ByName("TL"))
	x, _ := s.Catalog.Lookup("x")
	if dec := p.Request(env, jl, x, rt.Read); !dec.Granted || dec.Rule != "cond1" {
		t.Fatalf("empty-table read denied: %+v", dec)
	}
}

func TestCeilingBlockWhenBothCondsFail(t *testing.T) {
	// A third, lowest-priority reader of a high-Wceil item is refused.
	s := txn.NewSet("3way")
	a := s.Catalog.Intern("a")
	b := s.Catalog.Intern("b")
	s.Add(&txn.Template{Name: "H", Steps: []txn.Step{txn.Write(a), txn.Write(b)}})
	s.Add(&txn.Template{Name: "M", Steps: []txn.Step{txn.Read(a)}})
	s.Add(&txn.Template{Name: "L", Steps: []txn.Step{txn.Read(b)}})
	s.AssignByIndex()
	p := New()
	p.Init(s, txn.ComputeCeilings(s))
	env := cctest.NewEnv()
	env.AddJob(0, s.ByName("H"))
	jm := env.AddJob(1, s.ByName("M"))
	jl := env.AddJob(2, s.ByName("L"))
	env.ReadLock(jm.ID, a) // Sysceil = Wceil(a) = P_H
	dec := p.Request(env, jl, b, rt.Read)
	if dec.Granted {
		t.Fatalf("cond1 fails (P_L < P_H), cond2 fails (P_L < Wceil(b)=P_H): %+v", dec)
	}
	if dec.Rule != "ceiling" || len(dec.Blockers) != 1 || dec.Blockers[0] != jm.ID {
		t.Fatalf("decision = %+v", dec)
	}
}

func TestDeadlockOnExample5(t *testing.T) {
	// The paper's Example 5: the naive protocol deadlocks...
	k, err := sched.New(papercases.Example5(), New(), sched.Config{
		Horizon:        papercases.Example5Horizon,
		StopOnDeadlock: true,
		RecordTrace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := k.Run()
	if !res.Deadlocked {
		t.Fatalf("naive-DA must deadlock on Example 5:\n%s", res.Timeline.Render(res.Set))
	}
	if res.DeadlockAt != 3 {
		t.Errorf("deadlock at t=%d, want 3 (TH blocks at 2, TL at 3)", res.DeadlockAt)
	}
	if len(res.DeadlockCycle) != 2 {
		t.Errorf("cycle = %v, want the two jobs", res.DeadlockCycle)
	}
}

func TestPCPDASurvivesExample5(t *testing.T) {
	// ...and PCP-DA does not (golden trace from DESIGN.md §4).
	k, err := sched.New(papercases.Example5(), pcpda.New(), sched.Config{
		Horizon:        papercases.Example5Horizon,
		StopOnDeadlock: true,
		RecordTrace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := k.Run()
	if res.Deadlocked {
		t.Fatal("PCP-DA deadlocked on Example 5")
	}
	if res.Committed != 2 {
		t.Fatalf("committed = %d", res.Committed)
	}
	th := res.Set.ByName("TH")
	tl := res.Set.ByName("TL")
	if got := res.Timeline.RowString(th.ID); got != papercases.Ex5PCPDARowTH {
		t.Errorf("TH row %q, want %q", got, papercases.Ex5PCPDARowTH)
	}
	if got := res.Timeline.RowString(tl.ID); got != papercases.Ex5PCPDARowTL {
		t.Errorf("TL row %q, want %q", got, papercases.Ex5PCPDARowTL)
	}
	rep := res.History.Check()
	if !rep.Serializable || !rep.CommitOrderOK {
		t.Errorf("history: %v", rep.Violations)
	}
}

func TestIdentity(t *testing.T) {
	p := New()
	if p.Name() != "naive-DA" || !p.Deferred() {
		t.Fatal("identity wrong")
	}
}
