// Package naiveda implements the strawman protocol of the paper's Section 7
// (Example 5): PCP-DA's write rule (LC1) combined with the two "sufficient
// for single-blocking" read conditions
//
//	(1) P_i > Sysceil_i
//	(2) P_i ≥ HPW(x)
//
// without LC3/LC4's "x ∉ WriteSet(T*)" and No_Rlock safeguards. The paper
// shows condition (2) alone cannot avoid deadlocks: on Example 5 the two
// transactions read-lock each other's write targets and then block each
// other. This package exists so the experiments and tests can demonstrate
// the deadlock and thereby justify the derivation of LC3 and LC4.
package naiveda

import (
	"pcpda/internal/cc"
	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

// Protocol is the condition-(2) strawman.
type Protocol struct {
	cc.Base
	set  *txn.Set
	ceil *txn.Ceilings

	// Scratch for the holder list, reused across Request calls (one
	// instance drives one single-threaded run); deny decisions copy out.
	holdBuf    []rt.JobID
	holdAppend func(rt.JobID)
}

var _ cc.Protocol = (*Protocol)(nil)

// New returns a naive-DA instance.
func New() *Protocol { return &Protocol{} }

// Name identifies the protocol in reports.
func (p *Protocol) Name() string { return "naive-DA" }

// Deferred is true: same update-in-workspace model as PCP-DA.
func (p *Protocol) Deferred() bool { return true }

// Init captures the static set and ceilings.
func (p *Protocol) Init(set *txn.Set, ceil *txn.Ceilings) {
	p.set = set
	p.ceil = ceil
}

// Request implements LC1 for writes and conditions (1)/(2) for reads.
func (p *Protocol) Request(env cc.Env, j *cc.Job, x rt.Item, m rt.Mode) cc.Decision {
	locks := env.Locks()
	if m == rt.Write {
		if locks.NoRlockByOthers(x, j.ID) {
			return cc.Grant("LC1")
		}
		return cc.Block("rw-conflict", locks.ReadersOther(x, j.ID)...)
	}

	pri := j.BasePri()
	sys, holders := p.sysceilFor(env, j)
	if pri > sys {
		return cc.Grant("cond1")
	}
	if pri >= p.ceil.Wceil(x) {
		return cc.Grant("cond2")
	}
	// The holder list aliases p.holdBuf; the decision outlives the call.
	return cc.Block("ceiling", append([]rt.JobID(nil), holders...)...)
}

// sysceilFor computes Sysceil_i (highest Wceil over items read-locked by
// others) and the holders realizing it, through the cc.CeilingIndex
// capability when the Env maintains one, by lock-table scan otherwise. The
// two paths agree on the ceiling and the holder SET (enumeration order
// differs; the kernel canonicalizes blocker lists). The holder slice
// aliases p.holdBuf and is valid until the next Request.
func (p *Protocol) sysceilFor(env cc.Env, j *cc.Job) (rt.Priority, []rt.JobID) {
	p.holdBuf = p.holdBuf[:0]
	if idx, ok := env.(cc.CeilingIndex); ok {
		c := idx.SysceilExcluding(j.ID)
		if !c.IsDummy() {
			if p.holdAppend == nil {
				p.holdAppend = func(holder rt.JobID) {
					p.holdBuf = append(p.holdBuf, holder)
				}
			}
			idx.EachCeilingHolder(c, j.ID, p.holdAppend)
		}
		return c, p.holdBuf
	}
	sys := rt.Dummy
	env.Locks().EachReadLock(func(it rt.Item, holder rt.JobID) {
		if holder == j.ID {
			return
		}
		w := p.ceil.Wceil(it)
		if w > sys {
			sys = w
			p.holdBuf = p.holdBuf[:0]
		}
		if w == sys && !sys.IsDummy() {
			p.holdBuf = appendUnique(p.holdBuf, holder)
		}
	})
	return sys, p.holdBuf
}

func appendUnique(ids []rt.JobID, id rt.JobID) []rt.JobID {
	for _, have := range ids {
		if have == id {
			return ids
		}
	}
	return append(ids, id)
}
