// Package stats provides the small statistical toolkit the experiments use:
// streaming mean/variance (Welford's algorithm) and normal-approximation
// confidence intervals, so sweep tables can report how stable their numbers
// are across seeds without external dependencies.
package stats

import "math"

// Stream accumulates observations with Welford's online algorithm.
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Min and Max return the observed extremes (0 when empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Stream) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Stream) Stddev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the 95% confidence interval for the mean
// under the normal approximation (1.96·s/√n; 0 for n < 2).
func (s *Stream) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(s.n))
}

// Summary collects the headline numbers.
type Summary struct {
	N            int
	Mean, Stddev float64
	Min, Max     float64
	CI95         float64
}

// Summarize snapshots the stream.
func (s *Stream) Summarize() Summary {
	return Summary{
		N: s.n, Mean: s.Mean(), Stddev: s.Stddev(),
		Min: s.min, Max: s.max, CI95: s.CI95(),
	}
}
