package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyStream(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("empty stream must read zero everywhere")
	}
}

func TestKnownValues(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	sum := s.Summarize()
	if sum.N != 8 || sum.Mean != 5 || sum.CI95 <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestSingleObservation(t *testing.T) {
	var s Stream
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("single observation stats wrong")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("extremes wrong")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		rng := rand.New(rand.NewSource(seed))
		var s Stream
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			s.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-v) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCIShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Stream
	for i := 0; i < 10; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}
