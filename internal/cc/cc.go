// Package cc defines the contract between the scheduling kernel (package
// sched) and the concurrency-control protocols (pcpda, rwpcp, ccp, opcp,
// pip, tplhp, naiveda).
//
// The kernel owns jobs, the CPU, the lock table, the database and the
// history; a Protocol owns only the admission policy: given a lock request
// it answers "granted" (possibly after aborting victims) or "blocked by
// these jobs". Priority inheritance, blocking bookkeeping, deadlock
// detection and data movement are kernel concerns, identical across
// protocols, which keeps every protocol comparison apples-to-apples.
package cc

import (
	"pcpda/internal/db"
	"pcpda/internal/lock"
	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

// Status is a job's lifecycle state.
type Status uint8

const (
	// Ready: released, not blocked, competing for the CPU.
	Ready Status = iota
	// Blocked: waiting for a lock grant.
	Blocked
	// Done: committed.
	Done
	// Aborted: terminated without restart (firm deadline policy).
	Aborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Ready:
		return "ready"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	case Aborted:
		return "aborted"
	}
	return "?"
}

// Job is one released instance of a periodic transaction, including its
// runtime execution state. All fields are managed by the kernel; protocols
// read them (notably Tmpl's declared write set and DataRead) but must not
// mutate them.
type Job struct {
	ID          rt.JobID
	Run         db.RunID // current attempt; changes on restart
	Tmpl        *txn.Template
	Release     rt.Ticks
	AbsDeadline rt.Ticks // 0 = no deadline

	// Execution progress.
	StepIdx  int      // index into Tmpl.Steps
	StepDone rt.Ticks // ticks executed within the current step
	HasLock  bool     // current lock step's lock already acquired
	Status   Status

	// Scheduling.
	RunPri rt.Priority // current (possibly inherited) priority

	// Data state.
	DataRead *rt.ItemSet   // the paper's DataRead(T_i): items read so far
	WS       *db.Workspace // non-nil under deferred-update protocols

	// Blocking state (valid while Status == Blocked).
	BlockedOn   rt.Item
	BlockedMode rt.Mode
	Blockers    []rt.JobID
	// EverBlockedBy accumulates every distinct job that ever appeared in
	// Blockers — the evidence the single-blocking property tests examine.
	EverBlockedBy []rt.JobID

	// Statistics.
	FinishTick    rt.Ticks // commit boundary; -1 until done
	BlockedTicks  rt.Ticks // ticks spent Status == Blocked
	InvBlockTicks rt.Ticks // blocked ticks while a lower-base-priority job ran
	Restarts      int
	MissedAt      rt.Ticks // first tick the deadline was observed missed; -1 otherwise
}

// BasePri returns the job's original (uninherited) priority.
func (j *Job) BasePri() rt.Priority { return j.Tmpl.Priority }

// CurStep returns the step the job is currently executing and false when
// the job has exhausted its body.
func (j *Job) CurStep() (txn.Step, bool) {
	if j.StepIdx >= len(j.Tmpl.Steps) {
		return txn.Step{}, false
	}
	return j.Tmpl.Steps[j.StepIdx], true
}

// NeedsLock reports whether the job is at the start of a lock step whose
// lock it has not yet acquired, and returns the item and mode.
func (j *Job) NeedsLock() (rt.Item, rt.Mode, bool) {
	step, ok := j.CurStep()
	if !ok || j.HasLock || step.Kind == txn.Compute {
		return rt.NoItem, rt.Read, false
	}
	m := rt.Read
	if step.Kind == txn.WriteStep {
		m = rt.Write
	}
	return step.Item, m, true
}

// Finished reports whether every step has fully executed.
func (j *Job) Finished() bool { return j.StepIdx >= len(j.Tmpl.Steps) }

// ResponseTime returns FinishTick-Release, or -1 if not finished.
func (j *Job) ResponseTime() rt.Ticks {
	if j.Status != Done {
		return -1
	}
	return j.FinishTick - j.Release
}

// Missed reports whether the job's deadline was missed.
func (j *Job) Missed() bool { return j.MissedAt >= 0 }

// Decision is a protocol's answer to a lock request.
type Decision struct {
	// Granted: the lock may be taken now.
	Granted bool
	// Rule names the clause that fired, e.g. "LC1".."LC4" for PCP-DA,
	// "ceiling" for RW-PCP grants, "conflict"/"ceiling-block" for denials.
	// Rules are aggregated into per-run counters.
	Rule string
	// Blockers: on denial, the jobs responsible; they inherit the
	// requester's priority (transitively) until the request is granted.
	Blockers []rt.JobID
	// AbortVictims: jobs the protocol sacrifices for the requester (2PL-HP).
	// The kernel aborts and restarts them before acting on Granted, so a
	// decision may abort the lower-priority holders and still block on the
	// higher-priority ones.
	AbortVictims []rt.JobID
}

// Grant is shorthand for a granted decision under rule.
func Grant(rule string) Decision { return Decision{Granted: true, Rule: rule} }

// Block is shorthand for a denial under rule, blocked by the given jobs.
func Block(rule string, blockers ...rt.JobID) Decision {
	return Decision{Granted: false, Rule: rule, Blockers: blockers}
}

// Env is the kernel-side state a protocol may inspect while deciding.
type Env interface {
	// Now returns the current tick.
	Now() rt.Ticks
	// Locks returns the shared lock table (read-only use by protocols).
	Locks() *lock.Table
	// Job resolves a job id; nil when the job has left the system.
	Job(id rt.JobID) *Job
	// ActiveJobs returns the live (Ready/Blocked) jobs in id order.
	ActiveJobs() []*Job
}

// CeilingIndex is an optional capability an Env may provide (discovered by
// type assertion) when the kernel maintains read-lock ceilings incrementally.
// Protocols use it to answer the paper's Sysceil_i query in O(priority
// domain) instead of scanning every read lock in the table, and to enumerate
// the transactions realizing that ceiling (the T* set of rules LC3/LC4)
// without allocating. Envs without the capability fall back to the lock-table
// scan; the two paths must compute identical values.
type CeilingIndex interface {
	// SysceilExcluding returns Sysceil_o: the highest write-priority ceiling
	// Wceil(x) over all items x read-locked by transactions other than o
	// (rt.Dummy when there are none).
	SysceilExcluding(o rt.JobID) rt.Priority
	// EachCeilingHolder calls fn for every live transaction other than o
	// that holds a read lock on some item with Wceil(x) == c. Enumeration
	// order is ascending job id.
	EachCeilingHolder(c rt.Priority, o rt.JobID, fn func(holder rt.JobID))
}

// AccessCeilingIndex is the access-ceiling analogue of CeilingIndex for
// protocols (OPCP) where EVERY lock — read or write — raises the item's
// access ceiling Aceil(x). Same discovery, fallback and equivalence rules
// as CeilingIndex.
type AccessCeilingIndex interface {
	// SysAceilExcluding returns the highest Aceil(x) over all items x locked
	// (in any mode) by transactions other than o (rt.Dummy when none).
	SysAceilExcluding(o rt.JobID) rt.Priority
	// EachAceilHolder calls fn for every live transaction other than o that
	// holds a lock (any mode) on some item with Aceil(x) == c. Enumeration
	// order is ascending job id.
	EachAceilHolder(c rt.Priority, o rt.JobID, fn func(holder rt.JobID))
}

// RWCeilingIndex serves the RW-PCP rw-ceiling query: read locks contribute
// Wceil(x), write locks contribute Aceil(x) (the protocol's rwceil per
// lock). Same discovery, fallback and equivalence rules as CeilingIndex.
type RWCeilingIndex interface {
	// SysRWceilExcluding returns the highest rw-ceiling over all locks held
	// by transactions other than o (rt.Dummy when none): Wceil(x) for each
	// foreign read lock, Aceil(x) for each foreign write lock.
	SysRWceilExcluding(o rt.JobID) rt.Priority
	// EachRWceilHolder calls fn for every live transaction other than o
	// holding a lock whose rw-ceiling equals c, ascending job id.
	EachRWceilHolder(c rt.Priority, o rt.JobID, fn func(holder rt.JobID))
}

// Protocol is a pluggable concurrency-control policy.
type Protocol interface {
	// Name returns the short protocol name used in reports ("PCP-DA").
	Name() string
	// Deferred reports whether the protocol uses the update-in-workspace
	// model (writes buffered, installed at commit) rather than
	// update-in-place.
	Deferred() bool
	// Init receives the static transaction set and its priority ceilings
	// before the simulation starts.
	Init(set *txn.Set, ceil *txn.Ceilings)
	// Begin is called when a job is released (and again after a restart).
	Begin(env Env, j *Job)
	// Request decides a lock request by j for x in mode m.
	Request(env Env, j *Job, x rt.Item, m rt.Mode) Decision
	// Granted is called after the kernel records the lock in the table.
	Granted(env Env, j *Job, x rt.Item, m rt.Mode)
	// Committed is called after the kernel installed j's effects and
	// released its locks.
	Committed(env Env, j *Job)
	// Aborted is called after the kernel rolled back j and released its
	// locks.
	Aborted(env Env, j *Job)
	// EarlyRelease is called after j completes a step; the returned items
	// are unlocked immediately (CCP's pre-commit unlocking). Most protocols
	// return nil (strict 2PL).
	EarlyRelease(env Env, j *Job) []rt.Item
}

// CeilingReporter is implemented by ceiling-based protocols so the kernel
// can record the paper's Max_Sysceil track: the highest priority ceiling
// currently in effect across all held locks.
type CeilingReporter interface {
	SystemCeiling(env Env) rt.Priority
}

// Auditor lets a protocol export internal counters (PCP-DA uses it to prove
// the Table-1 side condition never fires on the LC2/LC3 paths).
type Auditor interface {
	Audit() map[string]int
}

// CommitArbiter is implemented by optimistic protocols that resolve
// conflicts at commit time: just before j's effects install, the kernel
// asks which active jobs must be restarted (forward validation / broadcast
// commit). The returned jobs are aborted and re-released after j commits.
type CommitArbiter interface {
	CommitVictims(env Env, j *Job) []rt.JobID
}

// Base provides no-op implementations of the optional Protocol callbacks;
// protocols embed it and override what they need.
type Base struct{}

// Begin is a no-op.
func (Base) Begin(Env, *Job) {}

// Granted is a no-op.
func (Base) Granted(Env, *Job, rt.Item, rt.Mode) {}

// Committed is a no-op.
func (Base) Committed(Env, *Job) {}

// Aborted is a no-op.
func (Base) Aborted(Env, *Job) {}

// EarlyRelease keeps strict two-phase locking: nothing unlocks early.
func (Base) EarlyRelease(Env, *Job) []rt.Item { return nil }
