package cc

import (
	"testing"

	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

func demoJob(t *testing.T) *Job {
	t.Helper()
	s := txn.NewSet("cc")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	s.Add(&txn.Template{Name: "T", Period: 10, Steps: []txn.Step{
		txn.Read(x), txn.Comp(2), txn.Write(y),
	}})
	s.AssignByIndex()
	return &Job{
		ID:         0,
		Tmpl:       s.Templates[0],
		Release:    5,
		Status:     Ready,
		RunPri:     s.Templates[0].Priority,
		DataRead:   rt.NewItemSet(),
		FinishTick: -1,
		MissedAt:   -1,
	}
}

func TestJobStepMachine(t *testing.T) {
	j := demoJob(t)
	step, ok := j.CurStep()
	if !ok || step.Kind != txn.ReadStep {
		t.Fatalf("first step = %+v ok=%v", step, ok)
	}
	item, mode, need := j.NeedsLock()
	if !need || mode != rt.Read || item != step.Item {
		t.Fatalf("NeedsLock = %v %v %v", item, mode, need)
	}
	j.HasLock = true
	if _, _, need := j.NeedsLock(); need {
		t.Fatal("lock already held: NeedsLock must be false")
	}
	// Advance into the compute step: no lock needed.
	j.StepIdx, j.StepDone, j.HasLock = 1, 0, false
	if _, _, need := j.NeedsLock(); need {
		t.Fatal("compute step needs no lock")
	}
	// Advance into the write step.
	j.StepIdx = 2
	item, mode, need = j.NeedsLock()
	if !need || mode != rt.Write {
		t.Fatalf("write step NeedsLock = %v %v %v", item, mode, need)
	}
	if j.Finished() {
		t.Fatal("not finished yet")
	}
	j.StepIdx = 3
	if !j.Finished() {
		t.Fatal("must be finished")
	}
	if _, ok := j.CurStep(); ok {
		t.Fatal("no current step after the last")
	}
	if _, _, need := j.NeedsLock(); need {
		t.Fatal("finished job needs nothing")
	}
}

func TestJobResponseAndMiss(t *testing.T) {
	j := demoJob(t)
	if j.ResponseTime() != -1 {
		t.Fatal("unfinished job has response -1")
	}
	if j.Missed() {
		t.Fatal("MissedAt=-1 means no miss")
	}
	j.Status = Done
	j.FinishTick = 12
	if j.ResponseTime() != 7 {
		t.Fatalf("response = %d, want 7", j.ResponseTime())
	}
	j.MissedAt = 15
	if !j.Missed() {
		t.Fatal("miss not reported")
	}
}

func TestJobBasePri(t *testing.T) {
	j := demoJob(t)
	if j.BasePri() != j.Tmpl.Priority {
		t.Fatal("BasePri must come from the template")
	}
	j.RunPri = j.BasePri() + 5
	if j.BasePri() == j.RunPri {
		t.Fatal("inheritance must not change the base priority")
	}
}

func TestDecisionHelpers(t *testing.T) {
	g := Grant("LC1")
	if !g.Granted || g.Rule != "LC1" || len(g.Blockers) != 0 {
		t.Fatalf("grant = %+v", g)
	}
	b := Block("ceiling", 3, 4)
	if b.Granted || b.Rule != "ceiling" || len(b.Blockers) != 2 || b.Blockers[0] != 3 {
		t.Fatalf("block = %+v", b)
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{Ready: "ready", Blocked: "blocked", Done: "done", Aborted: "aborted"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d renders %q", s, s.String())
		}
	}
	if Status(99).String() != "?" {
		t.Error("unknown status must render ?")
	}
}

func TestBaseIsNoOp(t *testing.T) {
	var b Base
	b.Begin(nil, nil)
	b.Granted(nil, nil, 0, rt.Read)
	b.Committed(nil, nil)
	b.Aborted(nil, nil)
	if items := b.EarlyRelease(nil, nil); items != nil {
		t.Fatal("Base.EarlyRelease must keep strict 2PL")
	}
}
