package scenario

import (
	"math"
	"math/rand"
	"testing"
)

// checkSchedule asserts the structural invariants every arrival schedule
// promises: ascending, in [0, durS).
func checkSchedule(t *testing.T, times []float64, durS float64) {
	t.Helper()
	for i, at := range times {
		if at < 0 || at >= durS {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, at, durS)
		}
		if i > 0 && at < times[i-1] {
			t.Fatalf("arrival %d at %v before predecessor %v", i, at, times[i-1])
		}
	}
}

func TestPeriodicTimes(t *testing.T) {
	times := ArrivalTimes(ArrivalSpec{Kind: ArrivalPeriodic, Rate: 4}, 10, rand.New(rand.NewSource(1)))
	checkSchedule(t, times, 10)
	if len(times) != 40 {
		t.Fatalf("periodic 4/s over 10s: got %d arrivals, want 40", len(times))
	}
	for i, at := range times {
		if want := float64(i) * 0.25; math.Abs(at-want) > 1e-9 {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	const rate, durS = 50.0, 200.0
	times := ArrivalTimes(ArrivalSpec{Kind: ArrivalPoisson, Rate: rate}, durS, rand.New(rand.NewSource(7)))
	checkSchedule(t, times, durS)
	// n ~ Poisson(10000): ±5σ = ±500 bounds a seeded draw with huge margin
	// while still catching a rate-units bug (factor 2 is 100σ away).
	want := rate * durS
	if diff := math.Abs(float64(len(times)) - want); diff > 5*math.Sqrt(want) {
		t.Fatalf("poisson %v/s over %vs: %d arrivals, want %v±%v", rate, durS, len(times), want, 5*math.Sqrt(want))
	}
	// Mean inter-arrival gap ≈ 1/rate.
	gaps := 0.0
	for i := 1; i < len(times); i++ {
		gaps += times[i] - times[i-1]
	}
	mean := gaps / float64(len(times)-1)
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Fatalf("mean gap %v, want ≈ %v", mean, 1/rate)
	}
}

func TestBurstyMeanAndWindows(t *testing.T) {
	spec := ArrivalSpec{Kind: ArrivalBursty, Rate: 20, OnS: 2, OffS: 3}
	const durS = 200.0
	times := ArrivalTimes(spec, durS, rand.New(rand.NewSource(3)))
	checkSchedule(t, times, durS)
	// The derived burst rate preserves the whole-phase mean.
	want := spec.Rate * durS
	if diff := math.Abs(float64(len(times)) - want); diff > 5*math.Sqrt(want) {
		t.Fatalf("bursty mean %v/s over %vs: %d arrivals, want %v±%v", spec.Rate, durS, len(times), want, 5*math.Sqrt(want))
	}
	// Every arrival must land inside an on-window.
	cycle := spec.OnS + spec.OffS
	for _, at := range times {
		if phase := math.Mod(at, cycle); phase >= spec.OnS {
			t.Fatalf("arrival at %v lands %vs into a cycle (off-window starts at %vs)", at, phase, spec.OnS)
		}
	}
}

func TestRampThinning(t *testing.T) {
	spec := ArrivalSpec{Kind: ArrivalRamp, Rate: 10, RateEnd: 50}
	const durS = 200.0
	times := ArrivalTimes(spec, durS, rand.New(rand.NewSource(9)))
	checkSchedule(t, times, durS)
	want := (spec.Rate + spec.RateEnd) / 2 * durS
	if diff := math.Abs(float64(len(times)) - want); diff > 5*math.Sqrt(want) {
		t.Fatalf("ramp %v→%v over %vs: %d arrivals, want %v±%v", spec.Rate, spec.RateEnd, durS, len(times), want, 5*math.Sqrt(want))
	}
	// The intensity rises, so the second half must hold well over half the
	// arrivals (expected split 30:70).
	half := 0
	for _, at := range times {
		if at < durS/2 {
			half++
		}
	}
	if frac := float64(half) / float64(len(times)); frac > 0.4 {
		t.Fatalf("ramp first half holds %.0f%% of arrivals, want ≈30%%", frac*100)
	}
	if MeanRate(spec) != 30 {
		t.Fatalf("MeanRate(ramp 10→50) = %v, want 30", MeanRate(spec))
	}
}

func TestArrivalDeterminism(t *testing.T) {
	for _, spec := range []ArrivalSpec{
		{Kind: ArrivalPeriodic, Rate: 7},
		{Kind: ArrivalPoisson, Rate: 13},
		{Kind: ArrivalBursty, Rate: 11, OnS: 1, OffS: 2},
		{Kind: ArrivalRamp, Rate: 5, RateEnd: 20},
	} {
		a := ArrivalTimes(spec, 30, rand.New(rand.NewSource(42)))
		b := ArrivalTimes(spec, 30, rand.New(rand.NewSource(42)))
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d arrivals from the same seed", spec.Kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs from the same seed: %v vs %v", spec.Kind, i, a[i], b[i])
			}
		}
	}
}
