package scenario

import (
	"sort"

	"pcpda/internal/rt"
	"pcpda/internal/sched"
	"pcpda/internal/sim"
)

// SimOptions tunes the sim backend.
type SimOptions struct {
	// Workers fans (phase, seed) cells across goroutines. Results are
	// collected per cell and merged in deterministic order, so any worker
	// count produces byte-identical reports. 0 or 1 runs serially.
	Workers int
	// Protocols overrides the spec's protocol list (and the
	// all-protocols default).
	Protocols []string
}

// RunSim runs the scenario against the simulator kernel: every phase ×
// sweep seed is compiled to a one-shot set and simulated under every
// protocol via sim.RunBatch, and the per-phase SLO rows aggregate across
// the sweep. The report is a pure function of (spec, options): no clocks,
// no map iteration, deterministic merge.
func RunSim(spec *Spec, opts SimOptions) (*Report, error) {
	base, err := spec.BaseSet()
	if err != nil {
		return nil, err
	}
	protocols := opts.Protocols
	if len(protocols) == 0 {
		protocols = spec.Protocols
	}
	if len(protocols) == 0 {
		protocols = sim.Protocols()
	}

	// One cell per (phase, sweep seed): compile once, simulate every
	// protocol against the same compiled set (sim.RunBatch amortizes the
	// per-set setup across the protocol fan).
	type cell struct {
		phase, sweep int
		cp           *compiledPhase
		results      []*sched.Result // one per protocol, in protocols order
		err          error
	}
	cells := make([]*cell, 0, len(spec.Phases)*spec.Seeds)
	for pi := range spec.Phases {
		for s := 0; s < spec.Seeds; s++ {
			cells = append(cells, &cell{phase: pi, sweep: s})
		}
	}
	runCell := func(c *cell) {
		ph := &spec.Phases[c.phase]
		cp, err := compilePhase(spec, ph, base, spec.phaseSeed(c.phase, c.sweep))
		if err != nil {
			c.err = err
			return
		}
		c.cp = cp
		simOpts := sim.Options{
			Horizon:        cp.horizon,
			FirmDeadlines:  true,
			StopOnDeadlock: true,
			Seed:           spec.phaseSeed(c.phase, c.sweep),
		}
		if f := ph.Faults; f != nil && f.AbortProb > 0 {
			simOpts.FaultAbortProb = f.AbortProb
			simOpts.FaultSeed = spec.phaseSeed(c.phase, c.sweep) ^ f.Seed
		}
		runs := make([]sim.BatchRun, len(protocols))
		for i, p := range protocols {
			runs[i] = sim.BatchRun{Set: cp.set, Protocol: p, Opts: simOpts}
		}
		c.results, c.err = sim.RunBatch(runs)
	}

	workers := opts.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for _, c := range cells {
			runCell(c)
		}
	} else {
		next := make(chan *cell)
		done := make(chan struct{})
		for w := 0; w < workers; w++ {
			go func() {
				defer func() { done <- struct{}{} }()
				for c := range next {
					runCell(c)
				}
			}()
		}
		for _, c := range cells {
			next <- c
		}
		close(next)
		for w := 0; w < workers; w++ {
			<-done
		}
	}
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err // first by cell order: deterministic
		}
	}

	// Aggregate: rows are (phase, protocol); cells merge in sweep-seed
	// order so pooled latencies (and therefore percentiles) are stable.
	rep := &Report{Scenario: spec.Name, Backend: "sim", Seed: spec.Seed, Seeds: spec.Seeds}
	for pi := range spec.Phases {
		ph := &spec.Phases[pi]
		for pr, proto := range protocols {
			row := PhaseReport{
				Phase:       ph.Name,
				Protocol:    proto,
				OfferedRate: MeanRate(ph.Arrival),
				Series:      make([]int64, seriesBuckets),
			}
			var lats []float64
			tierAcc := make(map[int32]*TierSLO)
			for _, c := range cells {
				if c.phase != pi {
					continue
				}
				res := c.results[pr]
				accumulateSim(&row, tierAcc, &lats, res, c.cp, spec.TicksPerSecond)
			}
			sort.Float64s(lats)
			row.P50MS, row.P99MS, row.P999MS = percentileMS(lats)
			tiers := make([]int32, 0, len(tierAcc))
			for t := range tierAcc {
				tiers = append(tiers, t)
			}
			sort.Slice(tiers, func(a, b int) bool { return tiers[a] > tiers[b] })
			for _, t := range tiers {
				row.Tiers = append(row.Tiers, *tierAcc[t])
			}
			// The sim's arrival schedule is realized exactly (offsets are
			// template releases), so achieved == nominal by construction.
			row.AchievedRate = row.OfferedRate
			row.finish(float64(spec.Seeds) * ph.DurationS)
			rep.Rows = append(rep.Rows, row)
		}
	}
	phaseNames := make([]string, len(spec.Phases))
	for i := range spec.Phases {
		phaseNames[i] = spec.Phases[i].Name
	}
	sortRows(rep.Rows, phaseNames)
	return rep, nil
}

// accumulateSim folds one kernel run into a row: per-job outcomes keyed by
// the instance's tier, latencies in ms, commits bucketed over the phase
// window. Under FirmAbort every commit is on time (a job is killed at its
// deadline), so OnTime == Committed.
func accumulateSim(row *PhaseReport, tierAcc map[int32]*TierSLO, lats *[]float64,
	res *sched.Result, cp *compiledPhase, tps int) {
	row.Restarts += int64(res.Restarts)
	row.Aborted += int64(res.FaultAborts)
	msPerTick := 1000 / float64(tps)
	for _, j := range res.Jobs {
		tier := int32(cp.tier[j.Tmpl.ID])
		ts, ok := tierAcc[tier]
		if !ok {
			ts = &TierSLO{Tier: tier}
			tierAcc[tier] = ts
		}
		row.Offered++
		ts.Offered++
		if j.FinishTick < 0 {
			continue // deadline abort, injected fault, or cut off at the horizon
		}
		row.Committed++
		row.OnTime++
		ts.OnTime++
		*lats = append(*lats, float64(j.FinishTick-j.Release)*msPerTick)
		bucket := int(j.FinishTick * rt.Ticks(seriesBuckets) / cp.durTicks)
		if bucket >= seriesBuckets {
			bucket = seriesBuckets - 1
		}
		row.Series[bucket]++
	}
}

