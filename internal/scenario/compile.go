package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

// maxInstances bounds one compiled phase: a scenario with rate × duration
// beyond this is almost certainly a units mistake, and the kernel would
// grind through it for minutes. Raise deliberately if a real scenario
// needs it.
const maxInstances = 20000

// compiledPhase is one phase rendered for the simulator: a one-shot
// transaction set (one template instance per arrival, at its arrival
// tick) plus the bookkeeping the SLO extraction needs.
type compiledPhase struct {
	set *txn.Set
	// tier maps instance template ID → base priority of the origin
	// template (the report's tier label; instance priorities are
	// synthetic — see below).
	tier []rt.Priority
	// durTicks is the phase window; horizon covers the window plus the
	// longest possible straggler.
	durTicks rt.Ticks
	horizon  rt.Ticks
}

// Profiles derives the picker's template profiles from a transaction set
// (the sim side; the live side derives the same numbers from the wire
// schema via liveProfiles).
func Profiles(set *txn.Set) []TemplateProfile {
	out := make([]TemplateProfile, len(set.Templates))
	for i, t := range set.Templates {
		reads, writes := 0, 0
		for _, st := range t.Steps {
			switch st.Kind {
			case txn.ReadStep:
				reads++
			case txn.WriteStep:
				writes++
			}
		}
		rf := 0.0
		if reads+writes > 0 {
			rf = float64(reads) / float64(reads+writes)
		}
		out[i] = TemplateProfile{Index: i, Priority: int32(t.Priority), ReadFrac: rf}
	}
	return out
}

// compilePhase renders one phase into a one-shot set for one sweep seed.
//
// Every arrival becomes a one-shot copy of the base template the access
// picker selects, released at its arrival tick with the phase's deadline
// budget. The kernel requires a total priority order, so instances get
// synthetic unique priorities assigned by (base priority desc, arrival
// asc): the tier structure is preserved — every instance of a
// higher-priority base template outranks every instance of a
// lower-priority one — and within a tier earlier arrivals rank higher
// (FIFO within priority, exactly the live admission queue's rule).
func compilePhase(spec *Spec, ph *PhaseSpec, base *txn.Set, seed int64) (*compiledPhase, error) {
	rng := rand.New(rand.NewSource(seed))
	times := ArrivalTimes(ph.Arrival, ph.DurationS, rng)
	if len(times) == 0 {
		return nil, fmt.Errorf("scenario %s: phase %s: arrival process produced no arrivals", spec.Name, ph.Name)
	}
	if len(times) > maxInstances {
		return nil, fmt.Errorf("scenario %s: phase %s: %d arrivals exceeds the %d-instance cap (rate × duration too large for the sim backend)",
			spec.Name, ph.Name, len(times), maxInstances)
	}
	tps := float64(spec.TicksPerSecond)
	durTicks := rt.Ticks(ph.DurationS * tps)
	picker := NewPicker(ph.Access, Profiles(base), ph.DurationS)

	cp := &compiledPhase{
		set:      &txn.Set{Name: fmt.Sprintf("%s/%s", spec.Name, ph.Name), Catalog: base.Catalog},
		durTicks: durTicks,
	}
	var maxTail rt.Ticks
	for i, at := range times {
		bt := base.Templates[picker.Pick(rng, at/ph.DurationS)]
		dl := bt.RelativeDeadline()
		if ph.DeadlineMS > 0 {
			dl = rt.Ticks(ph.DeadlineMS * tps / 1000)
		}
		if dl < bt.Exec() {
			// An infeasible budget would fail Set.Validate; releasing the
			// instance with the tightest feasible deadline keeps it in the
			// run (it can still miss through blocking, which is the point).
			dl = bt.Exec()
		}
		inst := &txn.Template{
			Name:     fmt.Sprintf("%s#%d", bt.Name, i),
			Priority: bt.Priority, // replaced by the synthetic order below
			Offset:   rt.Ticks(at * tps),
			Deadline: dl,
			Steps:    bt.Steps,
		}
		cp.set.Add(inst)
		cp.tier = append(cp.tier, bt.Priority)
		if tail := inst.Offset + dl; tail > maxTail {
			maxTail = tail
		}
	}

	// Synthetic total priority order: tiers first, arrival order within.
	order := make([]int, len(cp.set.Templates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := cp.set.Templates[order[a]], cp.set.Templates[order[b]]
		if ta.Priority != tb.Priority {
			return ta.Priority > tb.Priority
		}
		return ta.Offset < tb.Offset
	})
	n := len(order)
	for rank, idx := range order {
		cp.set.Templates[idx].Priority = rt.Priority(n - rank)
	}

	// Horizon: with firm deadlines every job resolves by its absolute
	// deadline; +1 lets the final commit tick happen.
	cp.horizon = maxTail + 1
	if cp.horizon < durTicks {
		cp.horizon = durTicks
	}
	if err := cp.set.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: phase %s: compiled set invalid: %w", spec.Name, ph.Name, err)
	}
	return cp, nil
}
