package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const testSpecJSON = `{
  "name": "unit",
  "seed": 5,
  "seeds": 2,
  "workload": { "n": 6, "items": 10 },
  "protocols": ["pcpda", "2plhp"],
  "phases": [
    {
      "name": "a",
      "duration_s": 1.5,
      "arrival": { "kind": "poisson", "rate": 10 },
      "access": { "kind": "zipf", "theta": 0.8 },
      "deadline_ms": 200
    },
    {
      "name": "b",
      "duration_s": 1.5,
      "arrival": { "kind": "ramp", "rate": 5, "rate_end": 20 },
      "access": { "kind": "hotshift", "theta": 0.9, "shift_every_s": 0.5 },
      "deadline_ms": 150,
      "faults": { "abort_prob": 0.01 }
    }
  ]
}`

func testSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := Parse([]byte(testSpecJSON))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return spec
}

func TestCompilePhase(t *testing.T) {
	spec := testSpec(t)
	base, err := spec.BaseSet()
	if err != nil {
		t.Fatal(err)
	}
	for pi := range spec.Phases {
		ph := &spec.Phases[pi]
		cp, err := compilePhase(spec, ph, base, spec.phaseSeed(pi, 0))
		if err != nil {
			t.Fatalf("phase %s: %v", ph.Name, err)
		}
		if err := cp.set.Validate(); err != nil {
			t.Fatalf("phase %s: compiled set invalid: %v", ph.Name, err)
		}
		if len(cp.tier) != len(cp.set.Templates) {
			t.Fatalf("phase %s: %d tier labels for %d instances", ph.Name, len(cp.tier), len(cp.set.Templates))
		}
		baseByName := make(map[string]bool)
		for _, bt := range base.Templates {
			baseByName[bt.Name] = true
		}
		for i, inst := range cp.set.Templates {
			if inst.Period != 0 {
				t.Fatalf("phase %s: instance %d is periodic", ph.Name, i)
			}
			if inst.Offset+inst.Deadline > cp.horizon {
				t.Fatalf("phase %s: instance %d tail %d past horizon %d", ph.Name, i, inst.Offset+inst.Deadline, cp.horizon)
			}
			if inst.Exec() > inst.Deadline {
				t.Fatalf("phase %s: instance %d infeasible (exec %d > deadline %d)", ph.Name, i, inst.Exec(), inst.Deadline)
			}
		}
		// Tier structure: every instance of a higher base tier outranks
		// every instance of a lower one under the synthetic priorities.
		for i := range cp.set.Templates {
			for j := range cp.set.Templates {
				if cp.tier[i] > cp.tier[j] && cp.set.Templates[i].Priority < cp.set.Templates[j].Priority {
					t.Fatalf("phase %s: tier inversion: instance %d (tier %d, pri %d) below instance %d (tier %d, pri %d)",
						ph.Name, i, cp.tier[i], cp.set.Templates[i].Priority, j, cp.tier[j], cp.set.Templates[j].Priority)
				}
			}
		}
	}
}

func TestCompileDeterminism(t *testing.T) {
	spec := testSpec(t)
	base, err := spec.BaseSet()
	if err != nil {
		t.Fatal(err)
	}
	a, err := compilePhase(spec, &spec.Phases[0], base, spec.phaseSeed(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := compilePhase(spec, &spec.Phases[0], base, spec.phaseSeed(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.set.Templates) != len(b.set.Templates) {
		t.Fatalf("instance counts differ: %d vs %d", len(a.set.Templates), len(b.set.Templates))
	}
	for i := range a.set.Templates {
		x, y := a.set.Templates[i], b.set.Templates[i]
		if x.Name != y.Name || x.Offset != y.Offset || x.Priority != y.Priority || x.Deadline != y.Deadline {
			t.Fatalf("instance %d differs: %+v vs %+v", i, x, y)
		}
	}
}

// TestRunSimDeterminism is the tentpole's reproducibility contract: the
// same spec and seed produce byte-identical JSON reports at any worker
// count, including with the fault layer on.
func TestRunSimDeterminism(t *testing.T) {
	spec := testSpec(t)
	var dumps [][]byte
	for _, workers := range []int{1, 4} {
		rep, err := RunSim(spec, SimOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, out)
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Fatalf("sim report differs between 1 and 4 workers:\n%s\nvs\n%s", dumps[0], dumps[1])
	}
	rep2, err := RunSim(spec, SimOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := rep2.JSON()
	if !bytes.Equal(dumps[0], out2) {
		t.Fatal("sim report differs on rerun at workers=2")
	}
}

func TestRunSimRows(t *testing.T) {
	spec := testSpec(t)
	rep, err := RunSim(spec, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Rows), len(spec.Phases)*len(spec.Protocols); got != want {
		t.Fatalf("%d rows, want %d", got, want)
	}
	for i := range rep.Rows {
		row := &rep.Rows[i]
		if row.Offered == 0 {
			t.Fatalf("row %s/%s offered 0", row.Phase, row.Protocol)
		}
		if row.OnTime != row.Committed {
			t.Fatalf("row %s/%s: on_time %d != committed %d under FirmAbort", row.Phase, row.Protocol, row.OnTime, row.Committed)
		}
		if row.Missed != row.Offered-row.OnTime {
			t.Fatalf("row %s/%s: missed %d, want offered−ontime %d", row.Phase, row.Protocol, row.Missed, row.Offered-row.OnTime)
		}
		var tierSum, seriesSum int64
		for _, ts := range row.Tiers {
			tierSum += ts.Offered
		}
		if tierSum != row.Offered {
			t.Fatalf("row %s/%s: tier offered sum %d != offered %d", row.Phase, row.Protocol, tierSum, row.Offered)
		}
		for _, c := range row.Series {
			seriesSum += c
		}
		if seriesSum != row.Committed {
			t.Fatalf("row %s/%s: series sum %d != committed %d", row.Phase, row.Protocol, seriesSum, row.Committed)
		}
	}
	// The fault phase must show injected aborts somewhere across protocols.
	var faulted int64
	for i := range rep.Rows {
		if rep.Rows[i].Phase == "b" {
			faulted += rep.Rows[i].Aborted
		}
	}
	if faulted == 0 {
		t.Fatal("fault phase b reported zero injected aborts across all protocols")
	}
}

// TestReportRoundTrip pins the shared schema: a report survives a JSON
// round trip byte-identically, so live reports (which share the schema)
// are stable for downstream tooling.
func TestReportRoundTrip(t *testing.T) {
	spec := testSpec(t)
	rep, err := RunSim(spec, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	out2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, out2) {
		t.Fatalf("report changed across a JSON round trip:\n%s\nvs\n%s", out, out2)
	}
}

// TestCatalogSpecsParse keeps the shipped scenarios/ catalog loadable: a
// grammar change that strands a curated spec fails here, not at runtime.
func TestCatalogSpecsParse(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no scenarios/ catalog found")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(data); err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"name":"x","workload":{"n":2,"items":2},"phasez":[]}`,
		"no phases":        `{"name":"x","workload":{"n":2,"items":2}}`,
		"bad arrival kind": `{"name":"x","workload":{"n":2,"items":2},"phases":[{"name":"p","duration_s":1,"arrival":{"kind":"warp","rate":1}}]}`,
		"zero rate":        `{"name":"x","workload":{"n":2,"items":2},"phases":[{"name":"p","duration_s":1,"arrival":{"kind":"poisson"}}]}`,
		"bad protocol":     `{"name":"x","protocols":["nope"],"workload":{"n":2,"items":2},"phases":[{"name":"p","duration_s":1,"arrival":{"kind":"poisson","rate":1}}]}`,
		"dup phase":        `{"name":"x","workload":{"n":2,"items":2},"phases":[{"name":"p","duration_s":1,"arrival":{"kind":"poisson","rate":1}},{"name":"p","duration_s":1,"arrival":{"kind":"poisson","rate":1}}]}`,
		"bad fault prob":   `{"name":"x","workload":{"n":2,"items":2},"phases":[{"name":"p","duration_s":1,"arrival":{"kind":"poisson","rate":1},"faults":{"abort_prob":1.5}}]}`,
	}
	for name, js := range cases {
		if _, err := Parse([]byte(js)); err == nil {
			t.Errorf("%s: accepted invalid spec", name)
		}
	}
}
