package scenario

import (
	"math"
	"math/rand"
	"testing"
)

// testProfiles builds n profiles with descending priority (n..1) and a
// read fraction rising with the index (template 0 write-heavy, template
// n−1 read-heavy).
func testProfiles(n int) []TemplateProfile {
	out := make([]TemplateProfile, n)
	for i := range out {
		out[i] = TemplateProfile{
			Index:    i,
			Priority: int32(n - i),
			ReadFrac: float64(i) / float64(n-1),
		}
	}
	return out
}

func TestZipfFrequencies(t *testing.T) {
	const n, draws = 8, 200000
	prof := testProfiles(n)
	p := NewPicker(AccessSpec{Kind: AccessZipf, Theta: 0.9}, prof, 10)
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[p.Pick(rng, 0)]++
	}
	// Rank r is profile r here (order is priority-descending and priorities
	// descend with the index). Bound each observed count by ±5σ of its
	// binomial expectation — loose enough for any seed, tight enough to
	// catch a wrong exponent or a broken CDF.
	for r := 0; r < n; r++ {
		exp := p.Mass(r) * draws
		sigma := math.Sqrt(exp * (1 - p.Mass(r)))
		if diff := math.Abs(float64(counts[r]) - exp); diff > 5*sigma {
			t.Fatalf("rank %d drawn %d times, want %.0f±%.0f", r, counts[r], exp, 5*sigma)
		}
	}
	// Monotone: rank 0 strictly dominates the tail.
	if counts[0] <= counts[n-1] {
		t.Fatalf("zipf head drawn %d ≤ tail %d", counts[0], counts[n-1])
	}
}

func TestHotShiftRotation(t *testing.T) {
	const n, draws = 8, 50000
	prof := testProfiles(n)
	// ShiftEveryS 2 over a 10s phase: 5 rotation epochs.
	p := NewPicker(AccessSpec{Kind: AccessHotShift, Theta: 1.2, ShiftEveryS: 2}, prof, 10)
	hottest := func(frac float64) int {
		rng := rand.New(rand.NewSource(31))
		counts := make(map[int]int)
		for i := 0; i < draws; i++ {
			counts[p.Pick(rng, frac)]++
		}
		best, bestC := -1, -1
		for idx, c := range counts {
			if c > bestC {
				best, bestC = idx, c
			}
		}
		return best
	}
	h0, h1 := hottest(0), hottest(0.25)
	if h0 == h1 {
		t.Fatalf("hot template did not move across a shift epoch: still %d", h0)
	}
	// One epoch advances the hot slot by exactly one rank position.
	if want := (h0 + 1) % n; h1 != want {
		t.Fatalf("hot template moved %d→%d, want %d", h0, h1, want)
	}
}

func TestMixShiftWeights(t *testing.T) {
	const n, draws = 8, 50000
	prof := testProfiles(n)
	p := NewPicker(AccessSpec{Kind: AccessMixShift}, prof, 10)
	countEnds := func(frac float64) (writeHeavy, readHeavy int) {
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < draws; i++ {
			switch p.Pick(rng, frac) {
			case 0:
				writeHeavy++
			case n - 1:
				readHeavy++
			}
		}
		return
	}
	w0, r0 := countEnds(0)
	if w0 <= 2*r0 {
		t.Fatalf("at frac 0 write-heavy template drawn %d, read-heavy %d: want clear write dominance", w0, r0)
	}
	w1, r1 := countEnds(1)
	if r1 <= 2*w1 {
		t.Fatalf("at frac 1 read-heavy template drawn %d, write-heavy %d: want clear read dominance", r1, w1)
	}
}

func TestPickerDeterminism(t *testing.T) {
	prof := testProfiles(6)
	for _, spec := range []AccessSpec{
		{Kind: AccessUniform},
		{Kind: AccessZipf, Theta: 0.7},
		{Kind: AccessHotShift, Theta: 0.7, ShiftEveryS: 1},
		{Kind: AccessMixShift},
	} {
		p := NewPicker(spec, prof, 4)
		a, b := rand.New(rand.NewSource(8)), rand.New(rand.NewSource(8))
		for i := 0; i < 1000; i++ {
			frac := float64(i) / 1000
			if x, y := p.Pick(a, frac), p.Pick(b, frac); x != y {
				t.Fatalf("%s: draw %d differs from the same seed: %d vs %d", spec.Kind, i, x, y)
			}
		}
	}
}
