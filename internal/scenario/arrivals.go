package scenario

import "math/rand"

// ArrivalTimes renders one phase's arrival process as explicit arrival
// offsets in seconds, ascending, all < durS. Both backends consume the
// same schedule: the sim quantizes to ticks (TicksPerSecond), the live
// runner hands it to client.RunLoad's absolute-time pacer — so a phase
// offers the identical arrival pattern to both, up to each backend's
// clock resolution.
//
// Every draw comes from rng, so the schedule is a pure function of (spec,
// seed). The deterministic processes (periodic) draw nothing.
func ArrivalTimes(a ArrivalSpec, durS float64, rng *rand.Rand) []float64 {
	switch a.Kind {
	case ArrivalPeriodic:
		return periodicTimes(a.Rate, durS)
	case ArrivalPoisson:
		return poissonTimes(a.Rate, 0, durS, rng)
	case ArrivalBursty:
		return burstyTimes(a, durS, rng)
	case ArrivalRamp:
		return rampTimes(a, durS, rng)
	}
	return nil // unreachable after Spec.Validate
}

func periodicTimes(rate, durS float64) []float64 {
	gap := 1 / rate
	out := make([]float64, 0, int(durS*rate)+1)
	for t := 0.0; t < durS; t += gap {
		out = append(out, t)
	}
	return out
}

// poissonTimes draws a homogeneous Poisson process at rate over
// [startS, endS).
func poissonTimes(rate, startS, endS float64, rng *rand.Rand) []float64 {
	var out []float64
	for t := startS + rng.ExpFloat64()/rate; t < endS; t += rng.ExpFloat64() / rate {
		out = append(out, t)
	}
	return out
}

// burstyTimes alternates on-windows (Poisson at the burst rate) with
// silent off-windows. An unset BurstRate derives the rate that makes the
// whole-phase mean equal Rate: Rate × (on+off)/on.
func burstyTimes(a ArrivalSpec, durS float64, rng *rand.Rand) []float64 {
	burst := a.BurstRate
	if burst == 0 {
		burst = a.Rate * (a.OnS + a.OffS) / a.OnS
	}
	var out []float64
	for cycle := 0.0; cycle < durS; cycle += a.OnS + a.OffS {
		end := cycle + a.OnS
		if end > durS {
			end = durS
		}
		out = append(out, poissonTimes(burst, cycle, end, rng)...)
	}
	return out
}

// rampTimes draws an inhomogeneous Poisson process whose rate ramps
// linearly Rate → RateEnd across the phase, by thinning: candidates at the
// peak rate, each kept with probability rate(t)/peak. Works for both
// up-ramps (diurnal morning) and down-ramps.
func rampTimes(a ArrivalSpec, durS float64, rng *rand.Rand) []float64 {
	peak := a.Rate
	if a.RateEnd > peak {
		peak = a.RateEnd
	}
	var out []float64
	for t := rng.ExpFloat64() / peak; t < durS; t += rng.ExpFloat64() / peak {
		rate := a.Rate + (a.RateEnd-a.Rate)*(t/durS)
		if rng.Float64()*peak < rate {
			out = append(out, t)
		}
	}
	return out
}

// MeanRate returns the process's whole-phase mean arrival rate — the
// nominal offered rate a report row carries.
func MeanRate(a ArrivalSpec) float64 {
	if a.Kind == ArrivalRamp {
		return (a.Rate + a.RateEnd) / 2
	}
	return a.Rate
}
