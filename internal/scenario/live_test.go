package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"pcpda/internal/rtm"
	"pcpda/internal/server"
)

const liveSpecJSON = `{
  "name": "live-unit",
  "seed": 9,
  "workload": { "n": 6, "items": 10 },
  "live": { "conns": 4, "window": 16 },
  "phases": [
    {
      "name": "steady",
      "duration_s": 1,
      "arrival": { "kind": "poisson", "rate": 30 },
      "access": { "kind": "zipf", "theta": 0.8 },
      "deadline_ms": 200
    },
    {
      "name": "mixed",
      "duration_s": 1,
      "arrival": { "kind": "periodic", "rate": 20 },
      "access": { "kind": "mixshift" },
      "deadline_ms": 200,
      "read_frac": 0.2,
      "read_frac_end": 0.6
    }
  ]
}`

// startServer self-hosts an in-process service over the spec's base
// workload, exactly as cmd/pcpscenario does.
func startServer(t *testing.T, spec *Spec) string {
	t.Helper()
	set, err := spec.BaseSet()
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := rtm.NewWithOptions(set, rtm.Options{FirmDeadlines: true, Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Manager: mgr})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
		<-done
	})
	return ln.Addr().String()
}

func TestRunLiveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live server for ~2s of wall time")
	}
	spec, err := Parse([]byte(liveSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, spec)
	rep, err := RunLive(context.Background(), spec, LiveOptions{Addr: addr})
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if rep.Backend != "live" {
		t.Fatalf("backend %q, want live", rep.Backend)
	}
	if len(rep.Rows) != len(spec.Phases) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(spec.Phases))
	}
	for i := range rep.Rows {
		row := &rep.Rows[i]
		if row.Protocol != "live" {
			t.Fatalf("row %s protocol %q", row.Phase, row.Protocol)
		}
		if row.Offered == 0 {
			t.Fatalf("row %s offered 0 arrivals", row.Phase)
		}
		if row.Committed == 0 {
			t.Fatalf("row %s committed nothing", row.Phase)
		}
		if row.AchievedRate <= 0 {
			t.Fatalf("row %s achieved rate %v", row.Phase, row.AchievedRate)
		}
		if len(row.Series) != seriesBuckets {
			t.Fatalf("row %s series has %d buckets, want %d", row.Phase, len(row.Series), seriesBuckets)
		}
	}
	// The live report shares the sim schema: round-trips byte-identically.
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	out2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, out2) {
		t.Fatal("live report changed across a JSON round trip")
	}
}

// TestRunLiveSchemaMismatch: driving a server generated from different
// workload parameters must fail loudly, not silently run a different
// experiment.
func TestRunLiveSchemaMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a live server")
	}
	spec, err := Parse([]byte(liveSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	other := *spec
	other.Workload.N = 4 // different template count than the served set
	addr := startServer(t, &other)
	if _, err := RunLive(context.Background(), spec, LiveOptions{Addr: addr}); err == nil {
		t.Fatal("RunLive accepted a server with a mismatched schema")
	}
}
