// Package scenario is the trace-driven workload engine: a declarative
// scenario spec composes sequential phases — each with its own arrival
// process, access skew, deadline budget and optional fault layer — and one
// engine runs the same spec against two backends, emitting one shared
// per-phase SLO report schema:
//
//   - the sim backend compiles every phase into one-shot transaction
//     instances for the simulator kernel and runs every requested protocol
//     over a seed sweep (internal/sim.RunBatch), byte-identically
//     reproducible for a fixed seed regardless of worker count;
//   - the live backend drives a pcpdad service through the pipelined
//     open-loop client (client.RunLoad), realizing the same arrival
//     schedule in wall time and the same access skew as template
//     selection, with nemesis proxy faults per phase.
//
// The spec is JSON (see scenarios/ for the curated catalog) plus flag
// overrides in cmd/pcpscenario. DESIGN.md §16 documents the grammar, the
// phase semantics and the sim-vs-live parity caveats.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"pcpda/internal/rt"
	"pcpda/internal/sim"
	"pcpda/internal/txn"
	"pcpda/internal/workload"
)

// Arrival process kinds.
const (
	ArrivalPeriodic = "periodic" // evenly spaced at Rate
	ArrivalPoisson  = "poisson"  // exponential gaps at Rate
	ArrivalBursty   = "bursty"   // on/off: Poisson bursts at BurstRate, silence between
	ArrivalRamp     = "ramp"     // inhomogeneous Poisson, Rate → RateEnd across the phase
)

// Access skew kinds.
const (
	AccessUniform  = "uniform"  // every template equally likely
	AccessZipf     = "zipf"     // Zipf(Theta) over templates ranked by priority
	AccessHotShift = "hotshift" // Zipf(Theta) whose ranking rotates every ShiftEveryS
	AccessMixShift = "mixshift" // selection weight shifts write-heavy → read-heavy across the phase
)

// ArrivalSpec describes one phase's arrival process. Rates are arrivals
// per second of scenario time; the sim backend converts through
// Spec.TicksPerSecond.
type ArrivalSpec struct {
	Kind string  `json:"kind"`
	Rate float64 `json:"rate"` // mean arrivals/s (periodic: exact; bursty: whole-phase mean)
	// RateEnd is the terminal rate of a ramp (required for ramp).
	RateEnd float64 `json:"rate_end,omitempty"`
	// OnS/OffS are the bursty dwell times in seconds (required for bursty).
	OnS  float64 `json:"on_s,omitempty"`
	OffS float64 `json:"off_s,omitempty"`
	// BurstRate is the arrival rate inside a bursty on-window; 0 derives
	// the rate that preserves the whole-phase mean Rate.
	BurstRate float64 `json:"burst_rate,omitempty"`
}

// AccessSpec describes one phase's access skew, realized as template
// selection in both backends (the wire protocol only lets a client pick
// declared templates, so template-selection skew is the only skew the two
// backends can share exactly).
type AccessSpec struct {
	Kind string `json:"kind"`
	// Theta is the Zipf exponent for zipf/hotshift (≥ 0; larger = more
	// skewed; θ ≤ 1 is supported, unlike math/rand.Zipf).
	Theta float64 `json:"theta,omitempty"`
	// ShiftEveryS rotates the hotshift ranking every this many seconds
	// (required for hotshift).
	ShiftEveryS float64 `json:"shift_every_s,omitempty"`
}

// NemesisSpec configures the live backend's per-phase fault proxy
// (internal/nemesis); fields mirror nemesis.Faults in JSON-friendly units.
type NemesisSpec struct {
	LatencyMS    float64 `json:"latency_ms,omitempty"`
	JitterMS     float64 `json:"jitter_ms,omitempty"`
	BandwidthBPS int64   `json:"bandwidth_bps,omitempty"`
	PReset       float64 `json:"p_reset,omitempty"`
	PDrop        float64 `json:"p_drop,omitempty"`
	PPartition   float64 `json:"p_partition,omitempty"`
}

// FaultSpec is one phase's optional fault layer. AbortProb drives the sim
// kernel's seeded transient-fault injection (sched.Config.FaultAbortProb:
// per executed tick, the running job is firm-aborted); Nemesis drives the
// live backend's TCP fault proxy. The two model different fault surfaces —
// transaction-kill versus transport damage — which is a documented parity
// caveat, not an accident: each backend injects the faults it can actually
// express.
type FaultSpec struct {
	AbortProb float64      `json:"abort_prob,omitempty"`
	Seed      int64        `json:"seed,omitempty"` // extra fault-RNG entropy; 0 derives from the scenario seed
	Nemesis   *NemesisSpec `json:"nemesis,omitempty"`
}

// PhaseSpec is one sequential phase of a scenario.
type PhaseSpec struct {
	Name      string      `json:"name"`
	DurationS float64     `json:"duration_s"`
	Arrival   ArrivalSpec `json:"arrival"`
	Access    AccessSpec  `json:"access"`
	// DeadlineMS is the firm deadline budget attached to every arrival,
	// milliseconds from arrival. 0 falls back to each base template's
	// relative deadline (sim) / no deadline (live).
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// ReadFrac is the fraction of live arrivals issued as declared
	// read-only snapshot transactions; ReadFracEnd, when set, ramps the
	// fraction across the phase. Live backend only (the kernel has no
	// snapshot read path — a parity caveat; use mixshift access skew for
	// a mix shift both backends realize).
	ReadFrac    float64  `json:"read_frac,omitempty"`
	ReadFracEnd *float64 `json:"read_frac_end,omitempty"`
	Faults      *FaultSpec `json:"faults,omitempty"`
}

// WorkloadSpec parameterizes the base template set both backends share:
// the sim compiles instances of it, and a self-hosted pcpdad serves
// exactly it. Field meanings match workload.Config; zero values take the
// pcpdad generation defaults so a spec and a `pcpdad -n N -items I` server
// agree on the schema.
type WorkloadSpec struct {
	N           int     `json:"n"`
	Items       int     `json:"items"`
	Utilization float64 `json:"utilization,omitempty"` // default 0.5
	WriteProb   float64 `json:"write_prob,omitempty"`  // default 0.5
	PeriodMin   int     `json:"period_min,omitempty"`  // default 40 (ticks)
	PeriodMax   int     `json:"period_max,omitempty"`  // default 400
	OpsMin      int     `json:"ops_min,omitempty"`     // default 2
	OpsMax      int     `json:"ops_max,omitempty"`     // default 4
	Seed        int64   `json:"seed,omitempty"`        // 0 uses the scenario seed
}

// LiveSpec tunes the live backend's load generator.
type LiveSpec struct {
	Conns       int `json:"conns,omitempty"`  // default 8
	Window      int `json:"window,omitempty"` // pipelined in-flight window, default 32
	MaxAttempts int `json:"max_attempts,omitempty"`
	MaxInFlight int `json:"max_inflight,omitempty"`
}

// Spec is a full scenario.
type Spec struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// TicksPerSecond is the sim backend's time scale: one second of
	// scenario time is this many kernel ticks. Default 100.
	TicksPerSecond int `json:"ticks_per_second,omitempty"`
	// Seeds is the sim backend's sweep width: each phase is simulated
	// under Seeds derived seeds and the SLO rows aggregate across them.
	// Default 3.
	Seeds int `json:"seeds,omitempty"`
	// Protocols restricts the sim backend; empty runs all of
	// sim.Protocols().
	Protocols []string     `json:"protocols,omitempty"`
	Workload  WorkloadSpec `json:"workload"`
	Phases    []PhaseSpec  `json:"phases"`
	Live      LiveSpec     `json:"live,omitempty"`
}

// Load reads and validates a scenario spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates a scenario spec. Unknown fields are errors:
// a typo in a knob name must not silently run the default experiment.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	s.fill()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// fill applies the documented defaults in place.
func (s *Spec) fill() {
	if s.TicksPerSecond == 0 {
		s.TicksPerSecond = 100
	}
	if s.Seeds == 0 {
		s.Seeds = 3
	}
	w := &s.Workload
	if w.Utilization == 0 {
		w.Utilization = 0.5
	}
	if w.WriteProb == 0 {
		w.WriteProb = 0.5
	}
	if w.PeriodMin == 0 {
		w.PeriodMin = 40
	}
	if w.PeriodMax == 0 {
		w.PeriodMax = 400
	}
	if w.OpsMin == 0 {
		w.OpsMin = 2
	}
	if w.OpsMax == 0 {
		w.OpsMax = 4
	}
	if s.Live.Conns == 0 {
		s.Live.Conns = 8
	}
	if s.Live.Window == 0 {
		s.Live.Window = 32
	}
}

// Validate checks the spec. fill must have run (Load/Parse do both).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.TicksPerSecond < 1 {
		return fmt.Errorf("scenario %s: ticks_per_second %d < 1", s.Name, s.TicksPerSecond)
	}
	if s.Seeds < 1 {
		return fmt.Errorf("scenario %s: seeds %d < 1", s.Name, s.Seeds)
	}
	known := make(map[string]bool)
	for _, p := range sim.Protocols() {
		known[p] = true
	}
	for _, p := range s.Protocols {
		if !known[p] {
			return fmt.Errorf("scenario %s: unknown protocol %q (have %v)", s.Name, p, sim.Protocols())
		}
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", s.Name)
	}
	names := make(map[string]bool, len(s.Phases))
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Name == "" {
			return fmt.Errorf("scenario %s: phase %d: missing name", s.Name, i)
		}
		if names[p.Name] {
			return fmt.Errorf("scenario %s: duplicate phase name %q", s.Name, p.Name)
		}
		names[p.Name] = true
		if p.DurationS <= 0 {
			return fmt.Errorf("scenario %s: phase %s: duration_s %v must be > 0", s.Name, p.Name, p.DurationS)
		}
		if err := p.Arrival.validate(); err != nil {
			return fmt.Errorf("scenario %s: phase %s: %w", s.Name, p.Name, err)
		}
		if err := p.Access.validate(); err != nil {
			return fmt.Errorf("scenario %s: phase %s: %w", s.Name, p.Name, err)
		}
		if p.DeadlineMS < 0 {
			return fmt.Errorf("scenario %s: phase %s: negative deadline_ms", s.Name, p.Name)
		}
		if p.ReadFrac < 0 || p.ReadFrac > 1 {
			return fmt.Errorf("scenario %s: phase %s: read_frac %v out of [0,1]", s.Name, p.Name, p.ReadFrac)
		}
		if p.ReadFracEnd != nil && (*p.ReadFracEnd < 0 || *p.ReadFracEnd > 1) {
			return fmt.Errorf("scenario %s: phase %s: read_frac_end %v out of [0,1]", s.Name, p.Name, *p.ReadFracEnd)
		}
		if f := p.Faults; f != nil {
			if f.AbortProb < 0 || f.AbortProb > 1 {
				return fmt.Errorf("scenario %s: phase %s: abort_prob %v out of [0,1]", s.Name, p.Name, f.AbortProb)
			}
			if n := f.Nemesis; n != nil {
				for _, pr := range []float64{n.PReset, n.PDrop, n.PPartition} {
					if pr < 0 || pr > 1 {
						return fmt.Errorf("scenario %s: phase %s: nemesis probability %v out of [0,1]", s.Name, p.Name, pr)
					}
				}
			}
		}
	}
	cfg := s.workloadConfig()
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("scenario %s: workload: %w", s.Name, err)
	}
	return nil
}

func (a *ArrivalSpec) validate() error {
	switch a.Kind {
	case ArrivalPeriodic, ArrivalPoisson:
	case ArrivalBursty:
		if a.OnS <= 0 || a.OffS < 0 {
			return fmt.Errorf("bursty arrivals need on_s > 0 and off_s >= 0 (got on=%v off=%v)", a.OnS, a.OffS)
		}
		if a.BurstRate < 0 {
			return fmt.Errorf("negative burst_rate %v", a.BurstRate)
		}
	case ArrivalRamp:
		if a.RateEnd < 0 {
			return fmt.Errorf("negative rate_end %v", a.RateEnd)
		}
	default:
		return fmt.Errorf("unknown arrival kind %q", a.Kind)
	}
	if a.Rate <= 0 {
		return fmt.Errorf("arrival rate %v must be > 0", a.Rate)
	}
	return nil
}

func (a *AccessSpec) validate() error {
	switch a.Kind {
	case "", AccessUniform, AccessMixShift:
	case AccessZipf:
		if a.Theta < 0 {
			return fmt.Errorf("negative zipf theta %v", a.Theta)
		}
	case AccessHotShift:
		if a.Theta < 0 {
			return fmt.Errorf("negative hotshift theta %v", a.Theta)
		}
		if a.ShiftEveryS <= 0 {
			return fmt.Errorf("hotshift needs shift_every_s > 0 (got %v)", a.ShiftEveryS)
		}
	default:
		return fmt.Errorf("unknown access kind %q", a.Kind)
	}
	return nil
}

// workloadConfig renders the base-set generator config.
func (s *Spec) workloadConfig() workload.Config {
	w := s.Workload
	seed := w.Seed
	if seed == 0 {
		seed = s.Seed
	}
	return workload.Config{
		Name:        s.Name + "-base",
		N:           w.N,
		Items:       w.Items,
		Utilization: w.Utilization,
		WriteProb:   w.WriteProb,
		PeriodMin:   rt.Ticks(w.PeriodMin),
		PeriodMax:   rt.Ticks(w.PeriodMax),
		OpsMin:      w.OpsMin,
		OpsMax:      w.OpsMax,
		Seed:        seed,
	}
}

// BaseSet generates the base template set the spec's phases instantiate —
// the same set a self-hosted pcpdad must serve for live parity.
func (s *Spec) BaseSet() (*txn.Set, error) {
	set, err := workload.Generate(s.workloadConfig())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return set, nil
}

// phaseSeed derives the deterministic RNG seed of (phase, sweep-seed):
// distinct odd multipliers keep the streams apart without any shared
// state. Both backends use it, so a live run and sweep seed 0 draw the
// same arrival schedule and template sequence.
func (s *Spec) phaseSeed(phase, sweep int) int64 {
	return s.Seed + int64(phase)*1_000_003 + int64(sweep)*7_919
}
