package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// seriesBuckets is the throughput-over-time resolution both backends
// report at.
const seriesBuckets = 10

// TierSLO is one priority tier's share of a phase row. Tier is the BASE
// priority of the tier's templates (the wire schema's priority on the
// live side, the origin template's priority on the sim side), so the two
// backends' tier labels line up.
type TierSLO struct {
	Tier      int32   `json:"tier"`
	Offered   int64   `json:"offered"`
	OnTime    int64   `json:"on_time"`
	MissRatio float64 `json:"deadline_miss_ratio"` // 1 - OnTime/Offered
}

// PhaseReport is one (phase, protocol) row of a scenario run — the shared
// SLO schema both backends emit. Counts aggregate across the sim seed
// sweep; latencies pool across seeds before the percentile cut.
type PhaseReport struct {
	Phase    string `json:"phase"`
	Protocol string `json:"protocol"` // sim protocol name, or "live/<proto>"

	Offered   int64 `json:"offered"`   // arrivals
	Committed int64 `json:"committed"` // commits, on time or not
	OnTime    int64 `json:"on_time"`   // commits within the deadline budget
	Missed    int64 `json:"missed"`    // Offered − OnTime: late, aborted, shed, dropped or lost
	Restarts  int64 `json:"restarts"`  // protocol restarts (sim) / client retries (live)
	Aborted   int64 `json:"aborted"`   // injected-fault aborts (sim) / abandoned transactions (live)
	Shed      int64 `json:"shed"`      // admission sheds (live; sim has no admission layer)
	Overrun   int64 `json:"overrun"`   // client-side drops at MaxInFlight (live)

	MissRatio float64 `json:"deadline_miss_ratio"` // 1 - OnTime/Offered

	P50MS  float64 `json:"p50_ms"` // arrival→commit latency over committed work
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`

	OfferedRate  float64 `json:"offered_rate"`  // nominal mean arrivals/s
	AchievedRate float64 `json:"achieved_rate"` // live: pacer-achieved; sim: exact by construction
	ThroughputPS float64 `json:"throughput_ps"` // Committed / phase duration

	Tiers []TierSLO `json:"tiers"`
	// Series is commits per bucket across the phase window (plus the
	// straggler tail in the last bucket) — the throughput-over-time view.
	Series []int64 `json:"series"`
}

// Report is one backend's run of a scenario.
type Report struct {
	Scenario string `json:"scenario"`
	Backend  string `json:"backend"` // "sim" | "live"
	Seed     int64  `json:"seed"`
	Seeds    int    `json:"seeds,omitempty"` // sim sweep width
	Rows     []PhaseReport `json:"rows"`
}

// Document bundles the backends' reports of one scenario run — the JSON
// file cmd/pcpscenario writes.
type Document struct {
	Scenario string    `json:"scenario"`
	Reports  []*Report `json:"reports"`
}

// JSON renders the report deterministically (fixed field order, no
// wall-clock fields on the sim backend): two sim runs of the same spec and
// seed produce byte-identical output regardless of worker count.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Render writes the human-readable table form.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "scenario %s · backend %s · seed %d", r.Scenario, r.Backend, r.Seed)
	if r.Seeds > 1 {
		fmt.Fprintf(w, " · %d-seed sweep", r.Seeds)
	}
	fmt.Fprintln(w)
	phase := ""
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Phase != phase {
			phase = row.Phase
			fmt.Fprintf(w, "phase %-14s offered %.0f/s\n", phase, row.OfferedRate)
			fmt.Fprintf(w, "  %-10s %8s %8s %8s %7s %8s %8s %8s %9s\n",
				"protocol", "offered", "ontime", "miss", "ratio", "p50ms", "p99ms", "p999ms", "thru/s")
		}
		fmt.Fprintf(w, "  %-10s %8d %8d %8d %7.3f %8.1f %8.1f %8.1f %9.1f\n",
			row.Protocol, row.Offered, row.OnTime, row.Missed, row.MissRatio,
			row.P50MS, row.P99MS, row.P999MS, row.ThroughputPS)
	}
}

// sortRows orders rows by phase (spec order is preserved by construction)
// then protocol name — the canonical row order of the shared schema.
func sortRows(rows []PhaseReport, phaseOrder []string) {
	rank := make(map[string]int, len(phaseOrder))
	for i, n := range phaseOrder {
		rank[n] = i
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rank[rows[a].Phase] != rank[rows[b].Phase] {
			return rank[rows[a].Phase] < rank[rows[b].Phase]
		}
		return rows[a].Protocol < rows[b].Protocol
	})
}

// finishRow derives the ratio fields every constructor shares.
func (p *PhaseReport) finish(durS float64) {
	p.Missed = p.Offered - p.OnTime
	if p.Offered > 0 {
		p.MissRatio = 1 - float64(p.OnTime)/float64(p.Offered)
	}
	if durS > 0 {
		p.ThroughputPS = float64(p.Committed) / durS
	}
	for i := range p.Tiers {
		t := &p.Tiers[i]
		if t.Offered > 0 {
			t.MissRatio = 1 - float64(t.OnTime)/float64(t.Offered)
		}
	}
}

// percentileMS cuts p50/p99/p999 out of a sorted latency slice (already in
// milliseconds).
func percentileMS(sorted []float64) (p50, p99, p999 float64) {
	n := len(sorted)
	if n == 0 {
		return 0, 0, 0
	}
	return sorted[n*50/100], sorted[n*99/100], sorted[n*999/1000]
}
