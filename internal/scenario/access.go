package scenario

import (
	"math"
	"math/rand"
	"sort"
)

// TemplateProfile is what the access-skew picker knows about one template:
// its index in the backend's template table, its base priority and its
// read fraction (share of data operations that are reads). The sim runner
// derives profiles from the txn.Set, the live runner from the wire schema
// — the same numbers either way, so both backends skew identically.
type TemplateProfile struct {
	Index    int
	Priority int32
	ReadFrac float64
}

// Picker realizes one phase's access skew as template selection. Pick is
// called once per update arrival with the arrival's fraction through the
// phase in [0,1); every random draw comes from the caller's rng, keeping
// the whole phase a pure function of the seed.
type Picker struct {
	spec AccessSpec
	prof []TemplateProfile
	// order ranks profiles by priority descending (ties by index): rank 0
	// is the hottest slot of a Zipf ranking, and the slot hotshift
	// rotation moves through.
	order []int
	// cum is the Zipf cumulative weight table over ranks (zipf/hotshift).
	cum []float64
	// shiftEvery is the hotshift rotation interval as a fraction of the
	// phase (ShiftEveryS / DurationS).
	shiftEvery float64
}

// NewPicker builds the picker for one phase over the backend's template
// profiles. durS is the phase duration (hotshift needs it to convert its
// rotation interval into phase fractions).
func NewPicker(spec AccessSpec, prof []TemplateProfile, durS float64) *Picker {
	p := &Picker{spec: spec, prof: prof}
	p.order = make([]int, len(prof))
	for i := range p.order {
		p.order[i] = i
	}
	sort.SliceStable(p.order, func(a, b int) bool {
		pa, pb := prof[p.order[a]], prof[p.order[b]]
		if pa.Priority != pb.Priority {
			return pa.Priority > pb.Priority
		}
		return pa.Index < pb.Index
	})
	switch spec.Kind {
	case AccessZipf, AccessHotShift:
		// Inverse-CDF Zipf over ranks: w_r = 1/(r+1)^θ. math/rand.Zipf
		// requires s > 1 and cannot express the θ ≤ 1 regime the RTDBS
		// literature sweeps, so the table is built directly.
		p.cum = make([]float64, len(prof))
		total := 0.0
		for r := range p.cum {
			total += 1 / math.Pow(float64(r+1), spec.Theta)
			p.cum[r] = total
		}
		if spec.Kind == AccessHotShift {
			p.shiftEvery = spec.ShiftEveryS / durS
		}
	}
	return p
}

// Pick selects the template for one arrival and returns its Index.
func (p *Picker) Pick(rng *rand.Rand, frac float64) int {
	n := len(p.prof)
	switch p.spec.Kind {
	case AccessZipf:
		return p.prof[p.order[p.zipfRank(rng)]].Index
	case AccessHotShift:
		// The ranking rotates: after k shifts, the template at rank slot
		// (r+k) mod n receives rank r's Zipf mass — the hot spot walks
		// through the template table while the marginal skew stays fixed.
		k := int(frac / p.shiftEvery)
		r := (p.zipfRank(rng) + k) % n
		return p.prof[p.order[r]].Index
	case AccessMixShift:
		// Selection mass shifts from write-heavy templates (frac 0) to
		// read-heavy ones (frac 1). The ε floor keeps every template
		// reachable so no tier's offered count collapses to zero.
		const eps = 0.05
		weights := make([]float64, n)
		total := 0.0
		for i, tp := range p.prof {
			w := eps + (1-frac)*(1-tp.ReadFrac) + frac*tp.ReadFrac
			weights[i] = w
			total += w
		}
		u := rng.Float64() * total
		acc := 0.0
		for i, w := range weights {
			acc += w
			if u < acc {
				return p.prof[i].Index
			}
		}
		return p.prof[n-1].Index
	default: // uniform
		return p.prof[rng.Intn(n)].Index
	}
}

// zipfRank draws a rank from the precomputed cumulative table.
func (p *Picker) zipfRank(rng *rand.Rand) int {
	u := rng.Float64() * p.cum[len(p.cum)-1]
	return sort.SearchFloat64s(p.cum, u)
}

// Mass returns the stationary selection probability of rank r under the
// picker's Zipf table (zipf/hotshift) — the expected frequency the
// generator tests bound observed counts against.
func (p *Picker) Mass(r int) float64 {
	total := p.cum[len(p.cum)-1]
	if r == 0 {
		return p.cum[0] / total
	}
	return (p.cum[r] - p.cum[r-1]) / total
}
