package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"pcpda/internal/client"
	"pcpda/internal/nemesis"
	"pcpda/internal/wire"
)

// LiveOptions tunes the live backend.
type LiveOptions struct {
	// Addr is the pcpdad service to drive.
	Addr string
	// SkipSchemaCheck accepts a server whose exported schema does not
	// match the spec's base workload. The per-template skew then applies
	// to whatever the server serves, and sim-vs-live rows are no longer
	// about the same workload — only set this to poke at a foreign
	// server.
	SkipSchemaCheck bool
}

// RunLive runs the scenario against a live pcpdad service through the
// pipelined open-loop client: each phase realizes the same arrival
// schedule (sweep seed 0) and the same access skew as the sim backend —
// the schedule via client.RunLoad's absolute-time pacer, the skew via the
// template-pick hook — and maps the load report into the shared SLO row
// schema.
func RunLive(ctx context.Context, spec *Spec, opts LiveOptions) (*Report, error) {
	probe, err := client.Dial(opts.Addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: live: %w", spec.Name, err)
	}
	schema := probe.Schema()
	_ = probe.Close()
	if len(schema.Templates) == 0 {
		return nil, fmt.Errorf("scenario %s: live: server exports no transaction types", spec.Name)
	}
	if !opts.SkipSchemaCheck {
		if err := checkSchema(spec, schema); err != nil {
			return nil, err
		}
	}

	rep := &Report{Scenario: spec.Name, Backend: "live", Seed: spec.Seed}
	prof := liveProfiles(schema)
	for pi := range spec.Phases {
		ph := &spec.Phases[pi]
		row, err := runLivePhase(ctx, spec, ph, pi, prof, opts.Addr)
		if err != nil {
			return rep, fmt.Errorf("scenario %s: phase %s: %w", spec.Name, ph.Name, err)
		}
		rep.Rows = append(rep.Rows, *row)
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
	}
	return rep, nil
}

func runLivePhase(ctx context.Context, spec *Spec, ph *PhaseSpec, pi int,
	prof []TemplateProfile, addr string) (*PhaseReport, error) {
	seed := spec.phaseSeed(pi, 0)
	times := ArrivalTimes(ph.Arrival, ph.DurationS, rand.New(rand.NewSource(seed)))
	offsets := make([]time.Duration, len(times))
	for i, t := range times {
		offsets[i] = time.Duration(t * float64(time.Second))
	}
	picker := NewPicker(ph.Access, prof, ph.DurationS)

	target := addr
	var proxy *nemesis.Proxy
	if f := ph.Faults; f != nil && f.Nemesis != nil {
		n := f.Nemesis
		p, err := nemesis.New(nemesis.Config{
			Listen: "127.0.0.1:0",
			Target: addr,
			Seed:   seed ^ f.Seed,
			Faults: nemesis.Faults{
				Latency:      time.Duration(n.LatencyMS * float64(time.Millisecond)),
				Jitter:       time.Duration(n.JitterMS * float64(time.Millisecond)),
				BandwidthBPS: n.BandwidthBPS,
				PReset:       n.PReset,
				PDrop:        n.PDrop,
				PPartition:   n.PPartition,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("nemesis: %w", err)
		}
		proxy = p
		target = p.Addr().String()
		defer proxy.Close()
	}

	lc := client.LoadConfig{
		Addr:          target,
		Conns:         spec.Live.Conns,
		Seed:          seed,
		Pipelined:     true,
		Window:        spec.Live.Window,
		MaxAttempts:   spec.Live.MaxAttempts,
		MaxInFlight:   spec.Live.MaxInFlight,
		ArrivalRate:   MeanRate(ph.Arrival),
		ArrivalTimes:  offsets,
		Duration:      time.Duration(ph.DurationS * float64(time.Second)),
		ReadFrac:      ph.ReadFrac,
		SeriesBuckets: seriesBuckets,
		PickTemplate:  func(rng *rand.Rand, frac float64) int { return picker.Pick(rng, frac) },
	}
	if ph.DeadlineMS > 0 {
		lc.DeadlineBudget = time.Duration(ph.DeadlineMS * float64(time.Millisecond))
	}
	if ph.ReadFracEnd != nil {
		start, end := ph.ReadFrac, *ph.ReadFracEnd
		lc.ReadFracAt = func(frac float64) float64 { return start + (end-start)*frac }
	}
	lr, err := client.RunLoad(ctx, lc)
	if err != nil && lr == nil {
		return nil, err
	}

	row := &PhaseReport{
		Phase:        ph.Name,
		Protocol:     "live", // the server picks its CC protocol; the wire doesn't name it
		Offered:      lr.Offered,
		Committed:    lr.Committed,
		OnTime:       lr.OnTime,
		Restarts:     lr.Retries,
		Aborted:      lr.Failed,
		Shed:         lr.Shed,
		Overrun:      lr.Overrun,
		P50MS:        msOf(lr.P50),
		P99MS:        msOf(lr.P99),
		P999MS:       msOf(lr.P999),
		OfferedRate:  lr.OfferedRate,
		AchievedRate: lr.AchievedRate,
		Series:       make([]int64, seriesBuckets),
	}
	for i, b := range lr.Series {
		if i < len(row.Series) {
			row.Series[i] = b.Committed
		}
	}
	for _, tr := range lr.Tiers {
		row.Tiers = append(row.Tiers, TierSLO{Tier: tr.Priority, Offered: tr.Offered, OnTime: tr.OnTime})
	}
	row.finish(ph.DurationS)
	return row, err
}

// msOf converts a duration to milliseconds for the shared row schema.
func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// liveProfiles derives the picker's template profiles from the wire
// schema — the live-side mirror of Profiles(set).
func liveProfiles(schema *wire.HelloOK) []TemplateProfile {
	out := make([]TemplateProfile, len(schema.Templates))
	for i, t := range schema.Templates {
		reads, writes := 0, 0
		for _, st := range t.Steps {
			switch st.Op {
			case wire.OpRead:
				reads++
			case wire.OpWrite:
				writes++
			}
		}
		rf := 0.0
		if reads+writes > 0 {
			rf = float64(reads) / float64(reads+writes)
		}
		out[i] = TemplateProfile{Index: i, Priority: t.Priority, ReadFrac: rf}
	}
	return out
}

// checkSchema verifies the server serves the spec's base workload: same
// template names with the same priorities. Without this the "same spec,
// two backends" claim silently degrades into two unrelated experiments.
func checkSchema(spec *Spec, schema *wire.HelloOK) error {
	base, err := spec.BaseSet()
	if err != nil {
		return err
	}
	if len(schema.Templates) != len(base.Templates) {
		return fmt.Errorf("scenario %s: live server schema has %d templates, spec workload %d (start the server from the same workload parameters, or SkipSchemaCheck)",
			spec.Name, len(schema.Templates), len(base.Templates))
	}
	want := make(map[string]int32, len(base.Templates))
	for _, t := range base.Templates {
		want[t.Name] = int32(t.Priority)
	}
	for _, t := range schema.Templates {
		pri, ok := want[t.Name]
		if !ok {
			return fmt.Errorf("scenario %s: live server exports template %q absent from the spec workload", spec.Name, t.Name)
		}
		if pri != t.Priority {
			return fmt.Errorf("scenario %s: live server template %q has priority %d, spec workload %d", spec.Name, t.Name, t.Priority, pri)
		}
	}
	return nil
}
