package opcp

import (
	"testing"

	"pcpda/internal/cctest"
	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

func fixture(t *testing.T) (*txn.Set, *Protocol, *cctest.Env, rt.Item, rt.Item) {
	t.Helper()
	s := txn.NewSet("fix")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	s.Add(&txn.Template{Name: "T1", Steps: []txn.Step{txn.Read(x)}})
	s.Add(&txn.Template{Name: "T2", Steps: []txn.Step{txn.Read(x), txn.Write(y)}})
	s.Add(&txn.Template{Name: "T3", Steps: []txn.Step{txn.Read(y)}})
	s.AssignByIndex()
	p := New()
	p.Init(s, txn.ComputeCeilings(s))
	env := cctest.NewEnv()
	for i, name := range []string{"T1", "T2", "T3"} {
		env.AddJob(rt.JobID(i), s.ByName(name))
	}
	return s, p, env, x, y
}

func TestExclusiveEvenForReaders(t *testing.T) {
	// Original PCP has no read sharing: T2's read lock on x (Aceil(x)=P1)
	// denies even T1's read.
	s, p, env, x, _ := fixture(t)
	env.ReadLock(1, x)
	dec := p.Request(env, env.Job(0), x, rt.Read)
	if dec.Granted {
		t.Fatalf("read sharing must not exist under original PCP: %+v", dec)
	}
	if len(dec.Blockers) != 1 || dec.Blockers[0] != 1 {
		t.Fatalf("blockers = %v", dec.Blockers)
	}
	_ = s
}

func TestGrantAboveCeiling(t *testing.T) {
	// T3 read-locks y: ceiling = Aceil(y) = P2. T1 (P1) clears it.
	_, p, env, x, y := fixture(t)
	env.ReadLock(2, y)
	if dec := p.Request(env, env.Job(0), x, rt.Read); !dec.Granted {
		t.Fatalf("T1 denied above ceiling: %+v", dec)
	}
	// T2 (P2) does not clear its own item's ceiling held by T3.
	if dec := p.Request(env, env.Job(1), x, rt.Read); dec.Granted {
		t.Fatalf("T2 granted at ceiling: %+v", dec)
	}
}

func TestOwnLocksExcluded(t *testing.T) {
	_, p, env, x, y := fixture(t)
	env.ReadLock(1, x)
	if dec := p.Request(env, env.Job(1), y, rt.Write); !dec.Granted {
		t.Fatalf("own lock denied own progress: %+v", dec)
	}
}

func TestSystemCeiling(t *testing.T) {
	_, p, env, x, y := fixture(t)
	if !p.SystemCeiling(env).IsDummy() {
		t.Fatal("empty ceiling not dummy")
	}
	env.ReadLock(2, y) // Aceil(y)=P2=2
	if c := p.SystemCeiling(env); c != 2 {
		t.Fatalf("ceiling = %v, want 2", c)
	}
	env.WriteLock(1, x) // Aceil(x)=P1=3
	if c := p.SystemCeiling(env); c != 3 {
		t.Fatalf("ceiling = %v, want 3", c)
	}
}

func TestIdentity(t *testing.T) {
	p := New()
	if p.Name() != "PCP" || p.Deferred() {
		t.Fatalf("identity wrong: %s %v", p.Name(), p.Deferred())
	}
}
