// Package opcp implements the original Priority Ceiling Protocol of Sha,
// Rajkumar and Lehoczky (the paper's [16]) applied to transactions.
//
// The original PCP predates read/write semantics: every lock is exclusive,
// and each item carries a single static ceiling — the priority of the
// highest-priority transaction that may access it (Aceil). A transaction may
// lock an item iff its priority is strictly higher than the highest ceiling
// among items locked by other transactions. The protocol is single-blocking
// and deadlock-free but ignores read/read compatibility entirely, which is
// why RW-PCP and CCP extend it; it serves here as the most conservative
// baseline.
package opcp

import (
	"pcpda/internal/cc"
	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

// Protocol is the original-PCP policy with exclusive locks.
type Protocol struct {
	cc.Base
	set  *txn.Set
	ceil *txn.Ceilings

	// Scratch for the holder list, reused across Request calls (one
	// instance drives one single-threaded run); deny decisions copy out.
	holdBuf    []rt.JobID
	holdAppend func(rt.JobID)
}

var _ cc.Protocol = (*Protocol)(nil)
var _ cc.CeilingReporter = (*Protocol)(nil)

// New returns an original-PCP instance.
func New() *Protocol { return &Protocol{} }

// Name identifies the protocol in reports.
func (p *Protocol) Name() string { return "PCP" }

// Deferred is false: update-in-place, strict 2PL.
func (p *Protocol) Deferred() bool { return false }

// Init captures the static set and ceilings.
func (p *Protocol) Init(set *txn.Set, ceil *txn.Ceilings) {
	p.set = set
	p.ceil = ceil
}

// sysceilFor computes the highest Aceil over items locked (in any mode) by
// jobs other than j, plus the holders realizing it — through the
// cc.AccessCeilingIndex capability when the Env maintains one, by
// lock-table scan otherwise. The two paths agree on the ceiling and the
// holder SET (enumeration order differs; the kernel canonicalizes blocker
// lists). The holder slice aliases p.holdBuf, valid until the next Request.
func (p *Protocol) sysceilFor(env cc.Env, j *cc.Job) (rt.Priority, []rt.JobID) {
	p.holdBuf = p.holdBuf[:0]
	if idx, ok := env.(cc.AccessCeilingIndex); ok {
		c := idx.SysAceilExcluding(j.ID)
		if !c.IsDummy() {
			if p.holdAppend == nil {
				p.holdAppend = func(holder rt.JobID) {
					p.holdBuf = append(p.holdBuf, holder)
				}
			}
			idx.EachAceilHolder(c, j.ID, p.holdAppend)
		}
		return c, p.holdBuf
	}
	locks := env.Locks()
	sys := rt.Dummy
	consider := func(x rt.Item, holder rt.JobID) {
		if holder == j.ID {
			return
		}
		c := p.ceil.Aceil(x)
		if c > sys {
			sys = c
			p.holdBuf = p.holdBuf[:0]
		}
		if c == sys && !sys.IsDummy() {
			p.holdBuf = appendUnique(p.holdBuf, holder)
		}
	}
	locks.EachReadLock(consider)
	locks.EachWriteLock(consider)
	return sys, p.holdBuf
}

func appendUnique(ids []rt.JobID, id rt.JobID) []rt.JobID {
	for _, have := range ids {
		if have == id {
			return ids
		}
	}
	return append(ids, id)
}

// Request grants iff P_i > Sysceil_i (exclusive-lock PCP rule). The mode is
// recorded as requested so the kernel performs the right data access, but
// compatibility-wise everything behaves exclusively: the ceiling raised by
// any lock is Aceil, which denies every other would-be accessor.
func (p *Protocol) Request(env cc.Env, j *cc.Job, x rt.Item, m rt.Mode) cc.Decision {
	sys, holders := p.sysceilFor(env, j)
	if j.BasePri() > sys {
		return cc.Grant("pcp-ok")
	}
	// The holder list aliases p.holdBuf; the decision outlives the call.
	return cc.Block("ceiling", append([]rt.JobID(nil), holders...)...)
}

// SystemCeiling reports the highest Aceil in force over all locked items.
func (p *Protocol) SystemCeiling(env cc.Env) rt.Priority {
	if idx, ok := env.(cc.AccessCeilingIndex); ok {
		return idx.SysAceilExcluding(rt.NoJob)
	}
	c := rt.Dummy
	seen := rt.NewItemSet()
	consider := func(x rt.Item, _ rt.JobID) {
		if seen.Has(x) {
			return
		}
		seen.Add(x)
		c = c.Max(p.ceil.Aceil(x))
	}
	env.Locks().EachReadLock(consider)
	env.Locks().EachWriteLock(consider)
	return c
}
