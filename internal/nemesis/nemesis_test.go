package nemesis

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes whatever it reads until EOF.
func echoServer(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr()
}

func startProxy(t *testing.T, f Faults, seed int64) *Proxy {
	t.Helper()
	p, err := New(Config{
		Listen: "127.0.0.1:0",
		Target: echoServer(t).String(),
		Seed:   seed,
		Faults: f,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// echoOnce writes msg through the proxy and reads it back.
func echoOnce(t *testing.T, c net.Conn, msg []byte) error {
	t.Helper()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	if _, err := c.Write(msg); err != nil {
		return err
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		return err
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %q want %q", got, msg)
	}
	return nil
}

func TestCleanRelay(t *testing.T) {
	p := startProxy(t, Faults{}, 1)
	c := dialProxy(t, p)
	for i := 0; i < 10; i++ {
		if err := echoOnce(t, c, []byte("hello through nemesis")); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Conns != 1 || st.Resets+st.Drops+st.Partitions != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.BytesC2S == 0 || st.BytesS2C == 0 {
		t.Fatalf("no bytes relayed: %+v", st)
	}
}

func TestLatencyShaping(t *testing.T) {
	const lat = 30 * time.Millisecond
	p := startProxy(t, Faults{Latency: lat}, 2)
	c := dialProxy(t, p)
	msg := []byte("ping")
	_ = echoOnce(t, c, msg) // warm the path (dial, accept) outside the clock
	start := time.Now()
	if err := echoOnce(t, c, msg); err != nil {
		t.Fatal(err)
	}
	// One chunk each direction: at least 2×Latency must have been added.
	if got := time.Since(start); got < 2*lat {
		t.Fatalf("round trip %v, want >= %v of injected latency", got, 2*lat)
	}
}

func TestResetInjection(t *testing.T) {
	f := Faults{PReset: 1, FaultAfterMin: 64, FaultAfterMax: 65}
	p := startProxy(t, f, 3)
	c := dialProxy(t, p)
	msg := bytes.Repeat([]byte("x"), 32)
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = echoOnce(t, c, msg)
	}
	if err == nil {
		t.Fatal("connection survived 100 echoes past a 64-byte reset threshold")
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("resets = %d, want 1 (stats %+v)", st.Resets, st)
	}
}

func TestDropInjection(t *testing.T) {
	f := Faults{PDrop: 1, FaultAfterMin: 64, FaultAfterMax: 65}
	p := startProxy(t, f, 4)
	c := dialProxy(t, p)
	msg := bytes.Repeat([]byte("y"), 32)
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = echoOnce(t, c, msg)
	}
	if err == nil {
		t.Fatal("connection survived 100 echoes past a 64-byte drop threshold")
	}
	// A silent drop must look like a close, not a reset.
	if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("drop surfaced as a stall, want connection close: %v", err)
	}
	if st := p.Stats(); st.Drops != 1 || st.Resets != 0 {
		t.Fatalf("drops = %d resets = %d, want 1/0 (stats %+v)", st.Drops, st.Resets, st)
	}
}

func TestPartitionInjection(t *testing.T) {
	f := Faults{PPartition: 1, FaultAfterMin: 64, FaultAfterMax: 65}
	// Find a seed whose first connection partitions server→client, so the
	// symptom is an unambiguous read stall.
	var seed int64
	for seed = 0; ; seed++ {
		pl, _, _ := planFor(seed, 0, f)
		if pl.partition && pl.partDir == dirS2C {
			break
		}
	}
	p := startProxy(t, f, seed)
	c := dialProxy(t, p)
	msg := bytes.Repeat([]byte("z"), 32)
	stalled := false
	for i := 0; i < 100; i++ {
		if err := c.SetDeadline(time.Now().Add(200 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(msg); err != nil {
			t.Fatalf("write failed — a one-way partition must keep the connection open: %v", err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(c, got); err != nil {
			if !errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("read failed with %v, want a deadline stall", err)
			}
			stalled = true
			break
		}
	}
	if !stalled {
		t.Fatal("reads kept succeeding past the partition threshold")
	}
	if st := p.Stats(); st.Partitions != 1 || st.Discarded == 0 {
		t.Fatalf("partitions = %d discarded = %d, want 1/nonzero (stats %+v)", st.Partitions, st.Discarded, st)
	}
}

func TestSlowReadBackpressure(t *testing.T) {
	// 2 KiB/s server→client: 1 KiB of echo takes ≥ ~0.4s to arrive even
	// though the server wrote it immediately.
	p := startProxy(t, Faults{SlowReadBPS: 2048}, 6)
	c := dialProxy(t, p)
	msg := bytes.Repeat([]byte("s"), 1024)
	start := time.Now()
	if err := echoOnce(t, c, msg); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 300*time.Millisecond {
		t.Fatalf("1 KiB echo took %v through a 2 KiB/s slow reader, want >= 300ms", got)
	}
}

// TestPlanDeterminism pins the seeded-fate contract: the fault plan for
// connection n is a pure function of (seed, n), and different connections
// under a mixed-fault config actually spread across the fault modes.
func TestPlanDeterminism(t *testing.T) {
	f := Faults{PReset: 0.3, PDrop: 0.3, PPartition: 0.3}
	if err := f.fill(); err != nil {
		t.Fatal(err)
	}
	const seed, conns = 42, 64
	var kinds [4]int
	for id := int64(0); id < conns; id++ {
		a, _, _ := planFor(seed, id, f)
		b, _, _ := planFor(seed, id, f)
		if a != b {
			t.Fatalf("conn %d: plan not deterministic: %+v vs %+v", id, a, b)
		}
		if a.faultAfter < f.FaultAfterMin || a.faultAfter >= f.FaultAfterMax {
			t.Fatalf("conn %d: faultAfter %d outside [%d,%d)", id, a.faultAfter, f.FaultAfterMin, f.FaultAfterMax)
		}
		switch {
		case a.reset:
			kinds[0]++
		case a.drop:
			kinds[1]++
		case a.partition:
			kinds[2]++
		default:
			kinds[3]++
		}
	}
	for i, n := range kinds {
		if n == 0 {
			t.Fatalf("fault kind %d never drawn across %d connections: %v", i, conns, kinds)
		}
	}
	if other, _, _ := planFor(seed+1, 0, f); other == func() plan { pl, _, _ := planFor(seed, 0, f); return pl }() {
		// Not strictly impossible, but with a 64-bit mix it means the seed
		// is being ignored.
		t.Fatal("plan identical under different seeds")
	}
}

func TestBadProbabilities(t *testing.T) {
	if _, err := New(Config{Listen: "127.0.0.1:0", Target: "127.0.0.1:1",
		Faults: Faults{PReset: 0.8, PDrop: 0.8}}); err == nil {
		t.Fatal("probabilities summing past 1 accepted")
	}
}

// TestConcurrentConns exercises many simultaneous faulted connections and
// a mid-traffic Close, under -race.
func TestConcurrentConns(t *testing.T) {
	f := Faults{PReset: 0.25, PDrop: 0.25, PPartition: 0.25,
		Latency: time.Millisecond, Jitter: time.Millisecond,
		FaultAfterMin: 64, FaultAfterMax: 256}
	p := startProxy(t, f, 7)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.Dial("tcp", p.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte("w"), 48)
			for j := 0; j < 20; j++ {
				if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
					return
				}
				if _, err := c.Write(msg); err != nil {
					return
				}
				got := make([]byte, len(msg))
				if _, err := io.ReadFull(c, got); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := p.Stats(); st.Conns != 16 {
		t.Fatalf("conns = %d, want 16", st.Conns)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
