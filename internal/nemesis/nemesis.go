// Package nemesis is a seeded in-process TCP fault-injection proxy.
//
// It sits between a client and a server and degrades the path the way real
// networks do: added latency and jitter, bandwidth caps, deliberately slow
// readers, silent connection drops, mid-stream RST resets, and one-way
// partitions (bytes keep flowing one direction, vanish the other). Tests
// and soaks route traffic through it to prove the protocol layers above —
// session teardown, slow-client defense, retry budgets, drain audits —
// hold up when the transport misbehaves.
//
// Every decision is drawn from a rng seeded by (Seed, connection number),
// so a given connection's fate — which fault it suffers and after how many
// bytes — is a pure function of the seed and its accept order. Same seed,
// same per-connection fault plan, reproducible failure.
//
// The package deliberately knows nothing about the wire protocol or the
// transaction manager; it moves bytes. (pcpdalint pins that: net-only
// imports, no rtm.)
package nemesis

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults selects which degradations a proxy applies. Probabilities are
// per-connection and mutually exclusive in the order reset, drop,
// partition: each connection suffers at most one terminal/partition fault,
// chosen at accept time. Latency, bandwidth and slow-read shaping apply to
// every connection.
type Faults struct {
	// Latency is the mean extra delay added to every chunk relayed, in
	// both directions. 0 disables.
	Latency time.Duration
	// Jitter spreads Latency uniformly over [Latency-Jitter,
	// Latency+Jitter] (clamped at zero).
	Jitter time.Duration
	// BandwidthBPS caps each direction's relay rate in bytes per second.
	// 0 disables.
	BandwidthBPS int64
	// SlowReadBPS additionally caps how fast the proxy reads from the
	// server (the server→client direction) — a deliberately slow reader.
	// The proxy stops draining the server's socket, the kernel buffer
	// fills, and the server's reply writes block: exactly the stall its
	// write deadline must cut off. 0 disables.
	SlowReadBPS int64
	// PReset is the per-connection probability of a mid-stream TCP reset
	// (RST, via SO_LINGER 0) after FaultAfter bytes.
	PReset float64
	// PDrop is the per-connection probability of a silent close (FIN, no
	// error code, no warning) after FaultAfter bytes.
	PDrop float64
	// PPartition is the per-connection probability of a one-way partition
	// after FaultAfter bytes: one direction (seeded choice) starts
	// discarding bytes while the connection stays open and the other
	// direction keeps working.
	PPartition float64
	// FaultAfterMin/Max bound the seeded per-connection byte count after
	// which the chosen fault fires. Defaults 512 and 8192.
	FaultAfterMin int64
	FaultAfterMax int64
}

func (f *Faults) fill() error {
	if f.PReset < 0 || f.PDrop < 0 || f.PPartition < 0 ||
		f.PReset+f.PDrop+f.PPartition > 1 {
		return errors.New("nemesis: fault probabilities must be non-negative and sum to at most 1")
	}
	if f.FaultAfterMin <= 0 {
		f.FaultAfterMin = 512
	}
	if f.FaultAfterMax <= f.FaultAfterMin {
		f.FaultAfterMax = max(8192, f.FaultAfterMin+1)
	}
	return nil
}

// Config parameterizes a Proxy.
type Config struct {
	// Listen is the address to accept client connections on (use
	// "127.0.0.1:0" in tests).
	Listen string
	// Target is the upstream server address traffic is relayed to.
	Target string
	// Seed drives every fault decision. Two proxies with the same Seed
	// and Faults deal identical fates to the n-th accepted connection.
	Seed int64
	// Faults selects the degradations to apply.
	Faults Faults
	// DialTimeout bounds the upstream dial per connection. Default 5s.
	DialTimeout time.Duration
	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// Stats counts what the proxy has done. Plain-value snapshot.
type Stats struct {
	Conns      int64 `json:"conns"`       // connections accepted
	Resets     int64 `json:"resets"`      // RSTs injected
	Drops      int64 `json:"drops"`       // silent closes injected
	Partitions int64 `json:"partitions"`  // one-way partitions injected
	BytesC2S   int64 `json:"bytes_c2s"`   // client→server bytes relayed
	BytesS2C   int64 `json:"bytes_s2c"`   // server→client bytes relayed
	Discarded  int64 `json:"discarded"`   // bytes swallowed by partitions
	DialErrors int64 `json:"dial_errors"` // upstream dials that failed
}

// Proxy is a running fault-injection proxy. Create with New, stop with
// Close.
type Proxy struct {
	cfg Config
	ln  net.Listener

	connSeq    atomic.Int64
	conns      atomic.Int64
	resets     atomic.Int64
	drops      atomic.Int64
	partitions atomic.Int64
	bytesC2S   atomic.Int64
	bytesS2C   atomic.Int64
	discarded  atomic.Int64
	dialErrs   atomic.Int64

	mu     sync.Mutex
	live   map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// New starts a proxy listening on cfg.Listen and relaying to cfg.Target.
func New(cfg Config) (*Proxy, error) {
	if err := cfg.Faults.fill(); err != nil {
		return nil, err
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("nemesis: listen %s: %w", cfg.Listen, err)
	}
	p := &Proxy{cfg: cfg, ln: ln, live: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:      p.conns.Load(),
		Resets:     p.resets.Load(),
		Drops:      p.drops.Load(),
		Partitions: p.partitions.Load(),
		BytesC2S:   p.bytesC2S.Load(),
		BytesS2C:   p.bytesS2C.Load(),
		Discarded:  p.discarded.Load(),
		DialErrors: p.dialErrs.Load(),
	}
}

// Close stops accepting, severs every live connection and waits for all
// relay goroutines to exit.
func (p *Proxy) Close() error {
	err := p.ln.Close()
	p.mu.Lock()
	p.closed = true
	for c := range p.live {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.live[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.live, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		id := p.connSeq.Add(1) - 1
		p.conns.Add(1)
		p.wg.Add(1)
		go p.serve(client, id)
	}
}

// dirC2S / dirS2C index the per-direction relay state.
const (
	dirC2S = 0
	dirS2C = 1
)

// plan is one connection's seeded fate.
type plan struct {
	reset      bool
	drop       bool
	partition  bool
	partDir    int   // direction the partition blackholes
	faultAfter int64 // total relayed bytes (both directions) before it fires
}

// planFor derives connection id's fault plan from the proxy seed. The rng
// is consumed in a fixed order so the plan depends only on (Seed, id).
func planFor(seed, id int64, f Faults) (plan, *rand.Rand, *rand.Rand) {
	// splitmix-style decorrelation so consecutive ids do not walk
	// correlated rand streams.
	s := uint64(seed) + uint64(id)*0x9e3779b97f4a7c15
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	rng := rand.New(rand.NewSource(int64(s)))
	var pl plan
	u := rng.Float64()
	switch {
	case u < f.PReset:
		pl.reset = true
	case u < f.PReset+f.PDrop:
		pl.drop = true
	case u < f.PReset+f.PDrop+f.PPartition:
		pl.partition = true
	}
	pl.partDir = rng.Intn(2)
	pl.faultAfter = f.FaultAfterMin + rng.Int63n(f.FaultAfterMax-f.FaultAfterMin)
	// Independent jitter streams per direction, both derived from the
	// already-decorrelated state so they are reproducible too.
	j1 := rand.New(rand.NewSource(rng.Int63()))
	j2 := rand.New(rand.NewSource(rng.Int63()))
	return pl, j1, j2
}

// serve relays one client connection to the target, applying the
// connection's seeded fault plan.
func (p *Proxy) serve(client net.Conn, id int64) {
	defer p.wg.Done()
	if !p.track(client) {
		_ = client.Close()
		return
	}
	defer p.untrack(client)
	server, err := net.DialTimeout("tcp", p.cfg.Target, p.cfg.DialTimeout)
	if err != nil {
		p.dialErrs.Add(1)
		_ = client.Close()
		return
	}
	if !p.track(server) {
		_ = client.Close()
		_ = server.Close()
		return
	}
	defer p.untrack(server)

	pl, jc2s, js2c := planFor(p.cfg.Seed, id, p.cfg.Faults)
	cc := &pconn{p: p, id: id, client: client, server: server, plan: pl}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); cc.pipe(dirC2S, client, server, jc2s, &p.bytesC2S) }()
	go func() { defer wg.Done(); cc.pipe(dirS2C, server, client, js2c, &p.bytesS2C) }()
	wg.Wait()
	_ = client.Close()
	_ = server.Close()
}

// pconn is the shared state of one proxied connection's two pipes.
type pconn struct {
	p      *Proxy
	id     int64
	client net.Conn
	server net.Conn
	plan   plan

	relayed atomic.Int64 // total bytes relayed, both directions
	fired   atomic.Bool  // terminal fault fired (once per connection)
}

// fire executes the connection's terminal fault (reset or drop). Returns
// true if this call fired it.
func (c *pconn) fire() bool {
	if !c.fired.CompareAndSwap(false, true) {
		return false
	}
	switch {
	case c.plan.reset:
		c.p.resets.Add(1)
		c.p.logf("nemesis: conn %d: injecting RST after %d bytes", c.id, c.relayed.Load())
		if tc, ok := c.client.(*net.TCPConn); ok {
			_ = tc.SetLinger(0) // close now sends RST, not FIN
		}
	case c.plan.drop:
		c.p.drops.Add(1)
		c.p.logf("nemesis: conn %d: silent drop after %d bytes", c.id, c.relayed.Load())
	}
	_ = c.client.Close()
	_ = c.server.Close()
	return true
}

// pipe relays src→dst in chunks, applying latency/jitter, bandwidth and
// slow-read shaping, and the connection's scheduled fault once the
// relayed-byte threshold passes. A partitioned direction keeps reading and
// discards, so the connection stays half-open instead of erroring.
func (c *pconn) pipe(dir int, src, dst net.Conn, jitter *rand.Rand, relayedCtr *atomic.Int64) {
	f := c.p.cfg.Faults
	readBPS := f.BandwidthBPS
	if dir == dirS2C && f.SlowReadBPS > 0 && (readBPS == 0 || f.SlowReadBPS < readBPS) {
		readBPS = f.SlowReadBPS
	}
	// Small chunks so shaping applies smoothly; a slow-read direction uses
	// even smaller ones so the kernel buffer drains at the capped rate
	// rather than in bursts.
	bufSize := 4096
	if readBPS > 0 {
		bufSize = 256
	}
	buf := make([]byte, bufSize)
	partitioned := false
	for {
		n, err := src.Read(buf)
		if n > 0 {
			total := c.relayed.Add(int64(n))
			if readBPS > 0 {
				time.Sleep(time.Duration(int64(n) * int64(time.Second) / readBPS))
			}
			if f.Latency > 0 {
				d := f.Latency
				if f.Jitter > 0 {
					d += time.Duration(jitter.Int63n(int64(2*f.Jitter))) - f.Jitter
				}
				if d > 0 {
					time.Sleep(d)
				}
			}
			threshold := total >= c.plan.faultAfter
			if threshold && (c.plan.reset || c.plan.drop) {
				c.fire()
				return
			}
			if threshold && c.plan.partition && c.plan.partDir == dir && !partitioned {
				partitioned = true
				c.p.partitions.Add(1)
				c.p.logf("nemesis: conn %d: one-way partition (dir %d) after %d bytes", c.id, dir, total)
			}
			if partitioned {
				c.p.discarded.Add(int64(n))
			} else {
				relayedCtr.Add(int64(n))
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
		}
		if err != nil {
			break
		}
	}
	if partitioned {
		// The partitioned direction swallowed the EOF/error too; sever the
		// connection so the peers' own timeouts are the only cleanup path
		// exercised while it lived, but the proxy still exits cleanly.
		_ = src.Close()
		return
	}
	// Half-close: propagate EOF to the reader's peer without killing the
	// opposite direction, mirroring TCP semantics through the proxy.
	if tc, ok := dst.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	} else {
		_ = dst.Close()
	}
	if half, ok := src.(interface{ CloseRead() error }); ok {
		_ = half.CloseRead()
	}
}
