// Package cctest provides a miniature in-memory cc.Env for unit-testing
// protocol Request logic in isolation: tests arrange a lock table and a set
// of live jobs by hand and assert on individual grant/deny decisions
// without running the full kernel.
package cctest

import (
	"pcpda/internal/cc"
	"pcpda/internal/db"
	"pcpda/internal/lock"
	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

// Env is a hand-arranged protocol environment.
type Env struct {
	T     rt.Ticks
	Table *lock.Table
	Jobs  map[rt.JobID]*cc.Job
}

var _ cc.Env = (*Env)(nil)

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{Table: lock.NewTable(), Jobs: make(map[rt.JobID]*cc.Job)}
}

// Now returns the configured tick.
func (e *Env) Now() rt.Ticks { return e.T }

// Locks returns the table.
func (e *Env) Locks() *lock.Table { return e.Table }

// Job resolves an id.
func (e *Env) Job(id rt.JobID) *cc.Job { return e.Jobs[id] }

// ActiveJobs returns the live jobs in id order.
func (e *Env) ActiveJobs() []*cc.Job {
	var out []*cc.Job
	for id := rt.JobID(0); int(id) <= len(e.Jobs)+8; id++ {
		if j, ok := e.Jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// AddJob registers a ready job for tmpl under the given id and returns it.
func (e *Env) AddJob(id rt.JobID, tmpl *txn.Template) *cc.Job {
	j := &cc.Job{
		ID:         id,
		Run:        db.RunID(id) + 1,
		Tmpl:       tmpl,
		Status:     cc.Ready,
		RunPri:     tmpl.Priority,
		DataRead:   rt.NewItemSet(),
		WS:         db.NewWorkspace(),
		FinishTick: -1,
		MissedAt:   -1,
	}
	e.Jobs[id] = j
	return j
}

// ReadLock arranges that job id holds a read lock on x and has read x.
func (e *Env) ReadLock(id rt.JobID, x rt.Item) {
	e.Table.Acquire(id, x, rt.Read)
	if j, ok := e.Jobs[id]; ok {
		j.DataRead.Add(x)
	}
}

// WriteLock arranges that job id holds a write lock on x.
func (e *Env) WriteLock(id rt.JobID, x rt.Item) {
	e.Table.Acquire(id, x, rt.Write)
}
