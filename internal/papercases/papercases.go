// Package papercases encodes the worked examples of the paper (Examples 1,
// 3, 4 and 5) as transaction sets, together with the schedules the paper's
// prose fixes for them. They serve as golden inputs for the figure
// reproductions (Figures 1-5) in the tests, the benchmarks and
// cmd/experiments.
//
// Where the paper's figures leave a compute-segment length implicit, the
// chosen durations are the unique ones consistent with every event time the
// prose states (lock times, completion times, blocking durations, the t=6
// deadline miss of Example 3); see DESIGN.md §4.
package papercases

import (
	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

// Example1 builds the transaction set of the paper's Example 1 (Figure 1):
//
//	T1: Read(x)   arrives t=2   C1=1
//	T2: Read(y)   arrives t=1   C2=1
//	T3: Write(x)  arrives t=0   C3=3
//
// Under RW-PCP, T2 suffers a ceiling blocking (y is free but Sysceil =
// Aceil(x) = P1) and T1 a conflict blocking; both wait for T3.
func Example1() *txn.Set {
	s := txn.NewSet("example1")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	s.Add(&txn.Template{Name: "T1", Offset: 2, Steps: []txn.Step{txn.Read(x)}})
	s.Add(&txn.Template{Name: "T2", Offset: 1, Steps: []txn.Step{txn.Read(y)}})
	s.Add(&txn.Template{Name: "T3", Offset: 0, Steps: []txn.Step{txn.Write(x), txn.Comp(2)}})
	s.AssignByIndex()
	return s
}

// Example1Horizon is the simulation length for Figure 1.
const Example1Horizon rt.Ticks = 6

// Figure 1 (RW-PCP) golden rows: '#' executing, '-' preempted, '.' blocked.
const (
	Fig1RowT1 = "  .#  "
	Fig1RowT2 = " ...# "
	Fig1RowT3 = "###   "
)

// Example 1 under PCP-DA (not a paper figure, but the contrast the paper
// argues in prose: both blockings are unnecessary and disappear).
const (
	Ex1PCPDARowT1 = "  #   "
	Ex1PCPDARowT2 = " #    "
	Ex1PCPDARowT3 = "#--## "
)

// Example3 builds the transaction set of Example 3 (Figures 2 and 3):
//
//	T1: Read(x), Read(y)            period 5, arrives t=1, C1=2
//	T2: Write(x), 2 ticks compute,
//	    Write(y), 1 tick compute    one-shot, arrives t=0, C2=5
//
// Wceil(x)=Wceil(y)=P2. Under PCP-DA T1 never blocks; under RW-PCP the
// first T1 instance is blocked from t=1 to t=5 and misses its deadline at
// t=6.
func Example3() *txn.Set {
	s := txn.NewSet("example3")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	s.Add(&txn.Template{Name: "T1", Offset: 1, Period: 5, Steps: []txn.Step{txn.Read(x), txn.Read(y)}})
	s.Add(&txn.Template{Name: "T2", Offset: 0, Steps: []txn.Step{
		txn.Write(x), txn.Comp(2), txn.Write(y), txn.Comp(1),
	}})
	s.AssignByIndex()
	return s
}

// Example3Horizon is the simulation length for Figures 2 and 3.
const Example3Horizon rt.Ticks = 10

// Figure 2 (Example 3 under PCP-DA) golden rows.
const (
	Fig2RowT1 = " ##   ##  "
	Fig2RowT2 = "#--###--# "
)

// Figure 3 (Example 3 under RW-PCP) golden rows. The first T1 instance
// misses its t=6 deadline (it finishes at t=7; the second instance runs
// t=7..8 right behind it).
const (
	Fig3RowT1 = " ....#### "
	Fig3RowT2 = "#####     "
)

// Example4 builds the transaction set of Example 4 (Figures 4 and 5):
//
//	T1: Read(x)                    arrives t=4, C1=2
//	T2: Write(y)                   arrives t=9, C2=2
//	T3: Read(z), Write(z)          arrives t=1, C3=2
//	T4: Read(y), Write(x), compute arrives t=0, C4=5
//
// Wceil(x)=P4 (T4 is x's only writer), Wceil(y)=P2, Wceil(z)=P3;
// Aceil(x)=P1. Under PCP-DA, T3's read of z is granted by LC4 and T1's
// read of write-locked x by LC2; under RW-PCP, T3 suffers a 4-tick ceiling
// blocking and T1 a 1-tick conflict blocking.
func Example4() *txn.Set {
	s := txn.NewSet("example4")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	z := s.Catalog.Intern("z")
	s.Add(&txn.Template{Name: "T1", Offset: 4, Steps: []txn.Step{txn.Read(x), txn.Comp(1)}})
	s.Add(&txn.Template{Name: "T2", Offset: 9, Steps: []txn.Step{txn.Write(y), txn.Comp(1)}})
	s.Add(&txn.Template{Name: "T3", Offset: 1, Steps: []txn.Step{txn.Read(z), txn.Write(z)}})
	s.Add(&txn.Template{Name: "T4", Offset: 0, Steps: []txn.Step{txn.Read(y), txn.Write(x), txn.Comp(3)}})
	s.AssignByIndex()
	return s
}

// Example4Horizon is the simulation length for Figures 4 and 5.
const Example4Horizon rt.Ticks = 12

// Figure 4 (Example 4 under PCP-DA) golden rows.
const (
	Fig4RowT1 = "    ##      "
	Fig4RowT2 = "         ## "
	Fig4RowT3 = " ##         "
	Fig4RowT4 = "#--#--###   "
)

// Figure 5 (Example 4 under RW-PCP) golden rows.
const (
	Fig5RowT1 = "    .##     "
	Fig5RowT2 = "         ## "
	Fig5RowT3 = " ......##   "
	Fig5RowT4 = "#####       "
)

// Example5 builds the two-transaction set of Example 5 (Section 7), the
// deadlock demonstration for the naive "condition (2)" protocol:
//
//	TH: Read(y), Write(x)             arrives t=1
//	TL: Read(x), compute, Write(y)    arrives t=0
//
// Wceil(x)=P_H, Wceil(y)=P_L. Under the naive rule TH read-locks y at t=1,
// then TH and TL block each other; under PCP-DA LC3 refuses TH's read of y
// (y ∈ WriteSet(T*)) and no deadlock arises.
func Example5() *txn.Set {
	s := txn.NewSet("example5")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	s.Add(&txn.Template{Name: "TH", Offset: 1, Steps: []txn.Step{txn.Read(y), txn.Write(x)}})
	s.Add(&txn.Template{Name: "TL", Offset: 0, Steps: []txn.Step{txn.Read(x), txn.Comp(1), txn.Write(y)}})
	s.AssignByIndex()
	return s
}

// Example5Horizon is long enough for the PCP-DA run to finish and for the
// naive run to reach its deadlock.
const Example5Horizon rt.Ticks = 8

// Example 5 under PCP-DA: TH is ceiling-blocked twice for a total of 2
// ticks (single blocking by TL), then both complete.
const (
	Ex5PCPDARowTH = " ..##   "
	Ex5PCPDARowTL = "###     "
)
