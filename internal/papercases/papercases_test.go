package papercases

import (
	"testing"

	"pcpda/internal/rt"
	"pcpda/internal/txn"
)

func TestAllExamplesValidate(t *testing.T) {
	for _, build := range []func() *txn.Set{Example1, Example3, Example4, Example5} {
		set := build()
		if err := set.Validate(); err != nil {
			t.Errorf("%s: %v", set.Name, err)
		}
	}
}

func TestExample1Shape(t *testing.T) {
	s := Example1()
	if len(s.Templates) != 3 {
		t.Fatal("Example 1 has three transactions")
	}
	t3 := s.ByName("T3")
	if t3.Exec() != 3 || t3.Offset != 0 {
		t.Fatalf("T3 = C%d @%d", t3.Exec(), t3.Offset)
	}
	x, _ := s.Catalog.Lookup("x")
	y, _ := s.Catalog.Lookup("y")
	ceil := txn.ComputeCeilings(s)
	// The paper's setup: x is written by T3 and read by T1 (Aceil(x)=P1);
	// y is only read, so its write ceiling is the dummy level.
	if ceil.Aceil(x) != s.ByName("T1").Priority {
		t.Errorf("Aceil(x) = %v", ceil.Aceil(x))
	}
	if !ceil.Wceil(y).IsDummy() {
		t.Errorf("Wceil(y) = %v, want dummy", ceil.Wceil(y))
	}
}

func TestExample3Shape(t *testing.T) {
	s := Example3()
	t1, t2 := s.ByName("T1"), s.ByName("T2")
	if t1.Period != 5 || t1.Offset != 1 || t1.Exec() != 2 {
		t.Fatalf("T1 = Pd%d @%d C%d", t1.Period, t1.Offset, t1.Exec())
	}
	if !t2.OneShot() || t2.Exec() != 5 {
		t.Fatalf("T2 = C%d oneshot=%v", t2.Exec(), t2.OneShot())
	}
	ceil := txn.ComputeCeilings(s)
	x, _ := s.Catalog.Lookup("x")
	y, _ := s.Catalog.Lookup("y")
	// Wceil(x) = Wceil(y) = P2, as the paper states.
	if ceil.Wceil(x) != t2.Priority || ceil.Wceil(y) != t2.Priority {
		t.Errorf("Wceil = %v/%v, want P2", ceil.Wceil(x), ceil.Wceil(y))
	}
}

func TestExample4Ceilings(t *testing.T) {
	s := Example4()
	ceil := txn.ComputeCeilings(s)
	x, _ := s.Catalog.Lookup("x")
	y, _ := s.Catalog.Lookup("y")
	z, _ := s.Catalog.Lookup("z")
	// Writers: x by T4, y by T2, z by T3 (and x is read by T1: Aceil=P1).
	if ceil.Wceil(x) != s.ByName("T4").Priority {
		t.Errorf("Wceil(x) = %v", ceil.Wceil(x))
	}
	if ceil.Wceil(y) != s.ByName("T2").Priority {
		t.Errorf("Wceil(y) = %v", ceil.Wceil(y))
	}
	if ceil.Wceil(z) != s.ByName("T3").Priority {
		t.Errorf("Wceil(z) = %v", ceil.Wceil(z))
	}
	if ceil.Aceil(x) != s.ByName("T1").Priority {
		t.Errorf("Aceil(x) = %v", ceil.Aceil(x))
	}
}

func TestExample5Ceilings(t *testing.T) {
	s := Example5()
	ceil := txn.ComputeCeilings(s)
	x, _ := s.Catalog.Lookup("x")
	y, _ := s.Catalog.Lookup("y")
	// Wceil(x) = P_H (TH writes x), Wceil(y) = P_L (TL writes y).
	if ceil.Wceil(x) != s.ByName("TH").Priority {
		t.Errorf("Wceil(x) = %v", ceil.Wceil(x))
	}
	if ceil.Wceil(y) != s.ByName("TL").Priority {
		t.Errorf("Wceil(y) = %v", ceil.Wceil(y))
	}
}

func TestGoldenRowWidthsMatchHorizons(t *testing.T) {
	cases := []struct {
		rows    []string
		horizon rt.Ticks
	}{
		{[]string{Fig1RowT1, Fig1RowT2, Fig1RowT3, Ex1PCPDARowT1, Ex1PCPDARowT2, Ex1PCPDARowT3}, Example1Horizon},
		{[]string{Fig2RowT1, Fig2RowT2, Fig3RowT1, Fig3RowT2}, Example3Horizon},
		{[]string{Fig4RowT1, Fig4RowT2, Fig4RowT3, Fig4RowT4, Fig5RowT1, Fig5RowT2, Fig5RowT3, Fig5RowT4}, Example4Horizon},
		{[]string{Ex5PCPDARowTH, Ex5PCPDARowTL}, Example5Horizon},
	}
	for i, c := range cases {
		for j, row := range c.rows {
			if rt.Ticks(len(row)) != c.horizon {
				t.Errorf("case %d row %d: width %d != horizon %d", i, j, len(row), c.horizon)
			}
		}
	}
}
