// Papertraces replays the paper's worked examples (1, 3, 4 and 5) under
// PCP-DA and its baselines through the public API and prints the timelines
// corresponding to Figures 1-5.
//
//	go run ./examples/papertraces
//
// For the full checked reproduction (with PASS/FAIL assertions against the
// prose) use cmd/experiments instead; this example shows how to drive the
// same scenarios from library code.
package main

import (
	"fmt"
	"log"

	"pcpda"
)

// The paper's examples, rebuilt through the public API. Arrival times and
// segment lengths follow the prose (see DESIGN.md §4).
func example1() *pcpda.Set {
	s := pcpda.NewSet("example1")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	s.Add(&pcpda.Template{Name: "T1", Offset: 2, Steps: []pcpda.Step{pcpda.Read(x)}})
	s.Add(&pcpda.Template{Name: "T2", Offset: 1, Steps: []pcpda.Step{pcpda.Read(y)}})
	s.Add(&pcpda.Template{Name: "T3", Offset: 0, Steps: []pcpda.Step{pcpda.Write(x), pcpda.Comp(2)}})
	s.AssignByIndex()
	return s
}

func example3() *pcpda.Set {
	s := pcpda.NewSet("example3")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	s.Add(&pcpda.Template{Name: "T1", Offset: 1, Period: 5, Steps: []pcpda.Step{pcpda.Read(x), pcpda.Read(y)}})
	s.Add(&pcpda.Template{Name: "T2", Offset: 0, Steps: []pcpda.Step{
		pcpda.Write(x), pcpda.Comp(2), pcpda.Write(y), pcpda.Comp(1)}})
	s.AssignByIndex()
	return s
}

func example4() *pcpda.Set {
	s := pcpda.NewSet("example4")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	z := s.Catalog.Intern("z")
	s.Add(&pcpda.Template{Name: "T1", Offset: 4, Steps: []pcpda.Step{pcpda.Read(x), pcpda.Comp(1)}})
	s.Add(&pcpda.Template{Name: "T2", Offset: 9, Steps: []pcpda.Step{pcpda.Write(y), pcpda.Comp(1)}})
	s.Add(&pcpda.Template{Name: "T3", Offset: 1, Steps: []pcpda.Step{pcpda.Read(z), pcpda.Write(z)}})
	s.Add(&pcpda.Template{Name: "T4", Offset: 0, Steps: []pcpda.Step{pcpda.Read(y), pcpda.Write(x), pcpda.Comp(3)}})
	s.AssignByIndex()
	return s
}

func example5() *pcpda.Set {
	s := pcpda.NewSet("example5")
	x := s.Catalog.Intern("x")
	y := s.Catalog.Intern("y")
	s.Add(&pcpda.Template{Name: "TH", Offset: 1, Steps: []pcpda.Step{pcpda.Read(y), pcpda.Write(x)}})
	s.Add(&pcpda.Template{Name: "TL", Offset: 0, Steps: []pcpda.Step{pcpda.Read(x), pcpda.Comp(1), pcpda.Write(y)}})
	s.AssignByIndex()
	return s
}

func show(title string, set *pcpda.Set, protocol string, horizon pcpda.Ticks) {
	res, err := pcpda.Run(set, protocol, pcpda.Options{
		Horizon: horizon, Trace: true, StopOnDeadlock: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s (%s) ---\n", title, res.Protocol)
	fmt.Println(res.Timeline.Render(set))
	sum := pcpda.Summarize(res)
	fmt.Printf("blocked=%d misses=%d deadlocked=%v serializable=%v\n\n",
		sum.TotalBlocked, sum.Misses, sum.Deadlocked, sum.Serializable)
}

func main() {
	show("Figure 1: Example 1", example1(), "rwpcp", 6)
	show("Example 1, blocking-free contrast", example1(), "pcpda", 6)
	show("Figure 2: Example 3", example3(), "pcpda", 10)
	show("Figure 3: Example 3 — T1 misses its deadline at t=6", example3(), "rwpcp", 10)
	show("Figure 4: Example 4", example4(), "pcpda", 12)
	show("Figure 5: Example 4", example4(), "rwpcp", 12)
	show("Example 5: the naive protocol deadlocks", example5(), "naiveda", 8)
	show("Example 5: PCP-DA does not", example5(), "pcpda", 8)
}
