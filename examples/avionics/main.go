// Avionics models the kind of hard real-time database the paper's
// introduction motivates ("avionics systems, aerospace systems, robotics
// and defence systems"): a memory-resident store of aircraft state shared
// by periodic flight-control transactions.
//
//	go run ./examples/avionics
//
// The workload (one tick = 0.1 ms):
//
//	attitude    (2 ms): reads gyro+accel, writes the fused attitude estimate
//	control     (5 ms): reads attitude+airdata, writes actuator commands
//	airdata    (10 ms): reads pitot sensors, writes calibrated airdata
//	nav        (40 ms): reads attitude+airdata, writes the nav solution
//	telemetry  (80 ms): read-only scan of the state for the downlink frame
//	calibration(160 ms): slow background job that WRITES the raw sensor
//	                     cells (gyro, accel) — it reads nothing
//
// The calibration job is the paper's headline case: it only write-locks
// items the 2 ms attitude loop reads. Under RW-PCP those write locks raise
// Aceil(gyro) to the attitude loop's own priority, so B(attitude) includes
// calibration's whole 2.5 ms body and the rate-monotonic test FAILS. Under
// PCP-DA write locks raise no ceiling at all: the attitude loop reads the
// committed sensor values straight through the locks, B(attitude) shrinks
// to the longest lower-priority READER of the attitude estimate, and the
// same transaction set becomes provably schedulable.
package main

import (
	"fmt"
	"log"

	"pcpda"
)

func buildWorkload() *pcpda.Set {
	set := pcpda.NewSet("avionics")
	gyro := set.Catalog.Intern("gyro")
	accel := set.Catalog.Intern("accel")
	attitude := set.Catalog.Intern("attitude")
	pitot := set.Catalog.Intern("pitot")
	airdata := set.Catalog.Intern("airdata")
	actuators := set.Catalog.Intern("actuators")
	navsol := set.Catalog.Intern("navsol")

	set.Add(&pcpda.Template{ // 2 ms loop, C = 0.4 ms
		Name: "attitude", Period: 20,
		Steps: []pcpda.Step{pcpda.Read(gyro), pcpda.Read(accel), pcpda.Comp(1), pcpda.Write(attitude)},
	})
	set.Add(&pcpda.Template{ // 5 ms loop, C = 0.5 ms
		Name: "control", Period: 50,
		Steps: []pcpda.Step{pcpda.Read(attitude), pcpda.Read(airdata), pcpda.Comp(2), pcpda.Write(actuators)},
	})
	set.Add(&pcpda.Template{ // 10 ms loop, C = 0.6 ms
		Name: "airdata", Period: 100,
		Steps: []pcpda.Step{pcpda.Read(pitot), pcpda.Comp(4), pcpda.Write(airdata)},
	})
	set.Add(&pcpda.Template{ // 40 ms loop, C = 1.2 ms
		Name: "nav", Period: 400,
		Steps: []pcpda.Step{pcpda.Read(attitude), pcpda.Read(airdata), pcpda.Comp(9), pcpda.Write(navsol)},
	})
	set.Add(&pcpda.Template{ // 80 ms downlink, C = 1.0 ms
		Name: "telemetry", Period: 800,
		Steps: []pcpda.Step{
			pcpda.Read(attitude), pcpda.Comp(2), pcpda.Read(airdata), pcpda.Comp(2),
			pcpda.Read(navsol), pcpda.Comp(2), pcpda.Read(actuators), pcpda.Comp(1),
		},
	})
	set.Add(&pcpda.Template{ // 160 ms sensor recalibration, C = 2.5 ms
		Name: "calibration", Period: 1600, Offset: 2,
		Steps: []pcpda.Step{pcpda.Comp(10), pcpda.Write(gyro), pcpda.Comp(4), pcpda.Write(accel), pcpda.Comp(9)},
	})
	set.AssignRateMonotonic()
	return set
}

func main() {
	set := buildWorkload()
	fmt.Printf("avionics workload: %d transactions, utilization %.3f\n\n",
		len(set.Templates), set.Utilization())
	ceil := pcpda.ComputeCeilings(set)
	for _, t := range set.Templates {
		fmt.Printf("  %-11s Pd=%-5d C=%-3d %s\n", t.Name, t.Period, t.Exec(), t.Signature(set.Catalog))
	}

	fmt.Println("\n--- worst-case analysis (paper Section 9) ---")
	for _, kind := range []pcpda.AnalysisKind{pcpda.AnalysisPCPDA, pcpda.AnalysisRWPCP} {
		rep, err := pcpda.RMTest(set, kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s schedulable=%v\n", kind, rep.Schedulable)
		for _, v := range rep.Verdicts {
			bts := pcpda.BlockingSet(set, ceil, kind, v.Txn)
			var who string
			for i, b := range bts {
				if i > 0 {
					who += ","
				}
				who += b.Name
			}
			if who == "" {
				who = "-"
			}
			fmt.Printf("  %-11s B=%-3d blockers={%s} util+block=%.3f bound=%.3f ok=%v\n",
				v.Txn.Name, v.B, who, v.Utilization, v.Bound, v.OK)
		}
	}
	fmt.Println("\nthe calibration writer sits in the attitude loop's blocking set only")
	fmt.Println("under RW-PCP: its write locks raise Aceil(gyro)=P1 there, while under")
	fmt.Println("PCP-DA write locks raise nothing (the paper's Section 9 comparison).")

	fmt.Println("\n--- simulation: one 160 ms cycle ---")
	comps, err := pcpda.Compare(set, []string{"pcpda", "rwpcp", "ccp"}, pcpda.Options{
		Horizon: 1602, StopOnDeadlock: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var sums []pcpda.Summary
	for _, c := range comps {
		sums = append(sums, c.Summary)
	}
	fmt.Print(pcpda.SummaryTable(sums))

	fmt.Println("\nnote: hard real-time is about guarantees over EVERY phasing. This")
	fmt.Println("particular offset assignment happens not to line calibration's write")
	fmt.Println("locks up with an attitude arrival, so the simulated runs look alike —")
	fmt.Println("but only PCP-DA can PROVE the attitude loop safe (see the analysis")
	fmt.Println("above, and the quickstart example for a worst-case phasing trace).")

	fmt.Println("\nattitude-loop behaviour under each protocol:")
	for _, c := range comps {
		for _, s := range pcpda.PerTxn(c.Result) {
			if s.Name != "attitude" {
				continue
			}
			fmt.Printf("  %-8s jobs=%-3d blocked=%-4d inversion=%-4d worst-response=%d misses=%d\n",
				c.Result.Protocol, s.Jobs, s.TotalBlocked, s.TotalInv, s.MaxResponse, s.Misses)
		}
	}
}
