// Quickstart: build a two-transaction workload, run it under PCP-DA and
// RW-PCP, and print both timelines side by side.
//
// This is the paper's Example 3 in miniature: a high-priority reader
// periodically touching items a low-priority writer holds write locks on.
// Under RW-PCP the reader blocks behind the writer's Aceil ceiling; under
// PCP-DA it reads the committed values right through the write locks and
// never blocks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pcpda"
)

func main() {
	set := pcpda.NewSet("quickstart")
	x := set.Catalog.Intern("x")
	y := set.Catalog.Intern("y")

	// A fast sensor-reading transaction: two reads every 5 ticks.
	set.Add(&pcpda.Template{
		Name:   "reader",
		Period: 5,
		Offset: 1,
		Steps:  []pcpda.Step{pcpda.Read(x), pcpda.Read(y)},
	})
	// A slow updater writing both items with some computation in between.
	set.Add(&pcpda.Template{
		Name:  "updater",
		Steps: []pcpda.Step{pcpda.Write(x), pcpda.Comp(2), pcpda.Write(y), pcpda.Comp(1)},
	})
	set.AssignByIndex() // reader gets the higher priority

	for _, protocol := range []string{"pcpda", "rwpcp"} {
		res, err := pcpda.Run(set, protocol, pcpda.Options{Horizon: 10, Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		sum := pcpda.Summarize(res)
		fmt.Printf("=== %s ===\n", res.Protocol)
		fmt.Println(res.Timeline.Render(set))
		fmt.Printf("misses=%d  blocked ticks=%d  serializable=%v\n\n",
			sum.Misses, sum.TotalBlocked, sum.Serializable)
	}
	fmt.Println("PCP-DA meets the reader's deadlines by dynamically serializing")
	fmt.Println("it BEFORE the uncommitted updater; RW-PCP blocks it and misses.")
}
