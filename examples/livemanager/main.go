// Livemanager drives the PCP-DA protocol as a real concurrency-control
// component: actual goroutines run transactions against the live manager
// (pcpda.NewManager), not the discrete-time simulator.
//
//	go run ./examples/livemanager
//
// The scenario mirrors Example 3: a fast "reader" goroutine repeatedly
// takes a consistent snapshot of two items that a slow "updater" goroutine
// rewrites in pairs. PCP-DA's dynamic adjustment lets every snapshot
// proceed instantly — the reader reads the last committed pair straight
// through the updater's write locks — while the commit-wait rule ensures
// the updater's new pair is never installed under a still-running
// snapshot, so no snapshot can ever observe a torn (half-updated) pair.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"pcpda"
)

func main() {
	set := pcpda.NewSet("live-demo")
	lo := set.Catalog.Intern("range_low")
	hi := set.Catalog.Intern("range_high")
	set.Add(&pcpda.Template{
		Name:  "snapshot", // high priority: Read(lo), Read(hi)
		Steps: []pcpda.Step{pcpda.Read(lo), pcpda.Read(hi)},
	})
	set.Add(&pcpda.Template{
		Name:  "rebalance", // low priority: Write(lo), Write(hi)
		Steps: []pcpda.Step{pcpda.Write(lo), pcpda.Write(hi)},
	})
	set.AssignByIndex()

	mgr, err := pcpda.NewManager(set)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const rounds = 200
	var wg sync.WaitGroup
	torn := 0
	var tornMu sync.Mutex

	// The invariant: lo and hi always move together (hi = lo + 1000).
	wg.Add(1)
	go func() { // updater
		defer wg.Done()
		for i := 1; i <= rounds; i++ {
			tx, err := mgr.Begin(ctx, "rebalance")
			if err != nil {
				log.Fatal(err)
			}
			base := pcpda.Value(i * 10)
			must(tx.Write(ctx, lo, base))
			must(tx.Write(ctx, hi, base+1000))
			must(tx.Commit(ctx))
		}
	}()

	wg.Add(1)
	go func() { // snapshotter
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tx, err := mgr.Begin(ctx, "snapshot")
			if err != nil {
				log.Fatal(err)
			}
			l, err := tx.Read(ctx, lo)
			must(err)
			h, err := tx.Read(ctx, hi)
			must(err)
			must(tx.Commit(ctx))
			if h-l != 1000 && !(l == 0 && h == 0) {
				tornMu.Lock()
				torn++
				tornMu.Unlock()
			}
		}
	}()

	wg.Wait()
	rep := mgr.History().Check()
	fmt.Printf("snapshots+rebalances committed: %d\n", rep.CommittedRuns)
	fmt.Printf("torn snapshots observed:        %d (must be 0)\n", torn)
	fmt.Printf("serializable:                   %v\n", rep.Serializable)
	fmt.Printf("commit-order (Theorem 3):       %v\n", rep.CommitOrderOK)
	fmt.Printf("cycle-breaking aborts:          %d\n", mgr.Aborts())
	fmt.Printf("final pair:                     lo=%d hi=%d\n",
		mgr.ReadCommitted(lo), mgr.ReadCommitted(hi))
	if torn != 0 || !rep.Serializable {
		log.Fatal("invariant violated")
	}
	fmt.Println("\nevery snapshot saw an atomic pair: reads pass through write locks")
	fmt.Println("(dynamic serialization adjustment) yet never observe torn state.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
