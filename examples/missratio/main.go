// Missratio sweeps total utilization and reports the firm-deadline miss
// ratio of every protocol over seeded random workloads — the classic RTDBS
// evaluation plot, here as a text table.
//
//	go run ./examples/missratio
//	go run ./examples/missratio -seeds 30 -n 10 -wp 0.5
package main

import (
	"flag"
	"fmt"
	"log"

	"pcpda"
	"pcpda/internal/stats"
)

func main() {
	var (
		seeds = flag.Int64("seeds", 15, "random workloads per point")
		n     = flag.Int("n", 8, "transactions per workload")
		items = flag.Int("items", 10, "shared data items")
		wp    = flag.Float64("wp", 0.4, "write probability")
	)
	flag.Parse()

	protocols := []string{"pcpda", "rwpcp", "ccp", "pcp", "2plhp", "occ"}
	utils := []float64{0.4, 0.6, 0.8, 1.0, 1.2}

	fmt.Printf("firm-deadline miss ratio, %d workloads/point, N=%d, wp=%.2f\n\n", *seeds, *n, *wp)
	fmt.Printf("%-6s", "U")
	for _, p := range protocols {
		fmt.Printf("  %13s", p)
	}
	fmt.Println()

	for _, u := range utils {
		fmt.Printf("%-6.2f", u)
		for _, p := range protocols {
			var st stats.Stream
			for seed := int64(0); seed < *seeds; seed++ {
				set, err := pcpda.Generate(pcpda.WorkloadConfig{
					N: *n, Items: *items, Utilization: u,
					PeriodMin: 40, PeriodMax: 800,
					OpsMin: 1, OpsMax: 4,
					WriteProb: *wp, Seed: 31000 + seed,
				})
				if err != nil {
					log.Fatal(err)
				}
				res, err := pcpda.Run(set, p, pcpda.Options{
					FirmDeadlines: true, StopOnDeadlock: true,
				})
				if err != nil {
					log.Fatal(err)
				}
				jobs := 0
				for _, j := range res.Jobs {
					if j.AbsDeadline > 0 {
						jobs++
					}
				}
				if jobs > 0 {
					st.Add(float64(res.Misses) / float64(jobs))
				}
			}
			// mean ± 95% CI over the per-workload ratios
			fmt.Printf("  %6.4f±%.4f", st.Mean(), st.CI95())
		}
		fmt.Println()
	}
	fmt.Println("\nvalues are mean ± 95% CI over per-workload miss ratios.")
	fmt.Println("expected shape: pcpda ≤ rwpcp ≈ ccp ≤ pcp ≤ 2plhp ≈ occ at every")
	fmt.Println("load, with the gap widening as contention grows.")
}
