// Command workgen emits a random periodic transaction workload as JSON,
// suitable for pcpsim and schedcheck.
//
//	workgen -n 8 -items 10 -util 0.6 -seed 42 > set.json
package main

import (
	"flag"
	"fmt"
	"os"

	"pcpda/internal/rt"
	"pcpda/internal/workload"
)

func main() {
	var (
		n         = flag.Int("n", 8, "number of transactions")
		items     = flag.Int("items", 10, "size of the data-item pool")
		util      = flag.Float64("util", 0.6, "total utilization target")
		pmin      = flag.Int64("pmin", 40, "minimum period")
		pmax      = flag.Int64("pmax", 800, "maximum period")
		opsMin    = flag.Int("opsmin", 1, "minimum data operations per transaction")
		opsMax    = flag.Int("opsmax", 4, "maximum data operations per transaction")
		writeProb = flag.Float64("wp", 0.4, "write probability per data operation")
		seed      = flag.Int64("seed", 1, "RNG seed")
		name      = flag.String("name", "", "workload name (default synthetic-<seed>)")
	)
	flag.Parse()

	set, err := workload.Generate(workload.Config{
		Name: *name, N: *n, Items: *items, Utilization: *util,
		PeriodMin: rt.Ticks(*pmin), PeriodMax: rt.Ticks(*pmax),
		OpsMin: *opsMin, OpsMax: *opsMax,
		WriteProb: *writeProb, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "workgen:", err)
		os.Exit(1)
	}
	data, err := workload.Marshal(set)
	if err != nil {
		fmt.Fprintln(os.Stderr, "workgen:", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
}
