// Command pcpsim simulates a workload file under one concurrency-control
// protocol and prints the paper-style timeline plus statistics.
//
//	pcpsim -workload example3.json -protocol pcpda
//	pcpsim -workload set.json -protocol rwpcp -horizon 200 -firm
//	pcpsim -workload set.json -protocol pcpda,rwpcp,ccp -j 3   # side-by-side
//	pcpsim -protocols            # list available protocols
//
// Passing several comma-separated protocols switches to compare mode: the
// set runs once per protocol (fanned across -j worker goroutines) and the
// summary table is printed side by side. The output is identical for every
// -j — runs share nothing and merge in argument order.
//
// Workload files are JSON (see internal/workload): transactions with
// periods, offsets and step lists over named items. The -paper flag loads
// one of the built-in paper examples (example1, example3, example4,
// example5) instead of a file.
//
// The -chaos N flag skips the simulator and instead hammers the LIVE
// transaction manager (internal/rtm) with N seeded fault schedules —
// forced delays, spurious wakeups, forced aborts, injected and real
// cancellations, plus firm deadlines when -firm is set — auditing lock
// table, live maps and history serializability after every schedule:
//
//	pcpsim -workload set.json -chaos 500 -seed 1
//
// The -livebench D flag drives the live manager at full speed for duration
// D (one worker goroutine per template, committed transactions counted) and
// prints throughput — a quick smoke test of the manager hot path without
// the go-test benchmark harness:
//
//	pcpsim -workload set.json -livebench 3s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pcpda/internal/metrics"
	"pcpda/internal/papercases"
	"pcpda/internal/rt"
	"pcpda/internal/rtm"
	"pcpda/internal/sim"
	"pcpda/internal/trace"
	"pcpda/internal/txn"
	"pcpda/internal/workload"
)

func main() {
	var (
		workloadPath = flag.String("workload", "", "workload JSON file")
		paper        = flag.String("paper", "", "built-in paper example: example1, example3, example4, example5")
		protocol     = flag.String("protocol", "pcpda", "concurrency-control protocol")
		horizon      = flag.Int64("horizon", 0, "simulation length in ticks (0 = derive from the set)")
		firm         = flag.Bool("firm", false, "abort jobs at their deadlines (firm real-time)")
		list         = flag.Bool("protocols", false, "list protocols and exit")
		perTxn       = flag.Bool("pertxn", false, "print per-transaction statistics")
		csvPath      = flag.String("csv", "", "write the timeline as CSV to this file")
		dotPath      = flag.String("dot", "", "write the serialization graph as Graphviz dot to this file")
		svgPath      = flag.String("svg", "", "write the timeline as a paper-style SVG figure to this file")
		jitter       = flag.Float64("jitter", 0, "sporadic arrival jitter J (inter-arrival in [Pd, Pd*(1+J)])")
		seed         = flag.Int64("seed", 0, "sporadic-arrival RNG seed (also seeds -chaos)")
		chaos        = flag.Int("chaos", 0, "run N seeded fault schedules against the live manager instead of simulating")
		livebench    = flag.Duration("livebench", 0, "drive the live manager for this long and print throughput instead of simulating")
		jobs         = flag.Int("j", 1, "worker goroutines for multi-protocol compare mode (-protocol a,b,c)")
	)
	flag.Parse()

	if *list {
		for _, p := range sim.Protocols() {
			fmt.Println(p)
		}
		return
	}

	set, err := loadSet(*workloadPath, *paper)
	if err != nil {
		fail(err)
	}

	if *chaos > 0 {
		runChaos(set, *chaos, *seed, *firm)
		return
	}
	if *livebench > 0 {
		runLiveBench(set, *livebench)
		return
	}
	if strings.Contains(*protocol, ",") {
		runCompare(set, strings.Split(*protocol, ","), sim.Options{
			Horizon:        rt.Ticks(*horizon),
			FirmDeadlines:  *firm,
			TrackCeiling:   true,
			StopOnDeadlock: true,
			SporadicJitter: *jitter,
			Seed:           *seed,
			Workers:        *jobs,
		})
		return
	}

	res, err := sim.Run(set, *protocol, sim.Options{
		Horizon:        rt.Ticks(*horizon),
		FirmDeadlines:  *firm,
		Trace:          true,
		StopOnDeadlock: true,
		SporadicJitter: *jitter,
		Seed:           *seed,
	})
	if err != nil {
		fail(err)
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.Timeline.CSV(set)), 0o644); err != nil {
			fail(err)
		}
	}
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(res.History.DOT(set)), 0o644); err != nil {
			fail(err)
		}
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(res.Timeline.SVG(set)), 0o644); err != nil {
			fail(err)
		}
	}

	fmt.Printf("workload %q under %s (horizon %d)\n\n", set.Name, res.Protocol, res.Horizon)
	for _, t := range set.Templates {
		fmt.Printf("  %-6s pri=%-3d period=%-5d offset=%-4d C=%-4d %s\n",
			t.Name, t.Priority, t.Period, t.Offset, t.Exec(), t.Signature(set.Catalog))
	}
	fmt.Println()
	fmt.Println(res.Timeline.Render(set))
	fmt.Println(trace.Legend())
	fmt.Println()

	sum := metrics.Summarize(res)
	fmt.Print(metrics.Table([]metrics.Summary{sum}))
	if res.Deadlocked {
		fmt.Printf("\nDEADLOCK at t=%d involving jobs %v\n", res.DeadlockAt, res.DeadlockCycle)
	}
	if len(res.GrantCounts) > 0 {
		fmt.Printf("\ngrants by rule: %v\n", res.GrantCounts)
	}
	if len(res.BlockCounts) > 0 {
		fmt.Printf("blockings by rule: %v\n", res.BlockCounts)
	}

	if len(res.ItemBlocked) > 0 {
		fmt.Println("\ncontended items (blocked ticks attributed to the awaited item):")
		type pair struct {
			name  string
			ticks rt.Ticks
		}
		var items []pair
		for it, n := range res.ItemBlocked {
			items = append(items, pair{set.Catalog.Name(it), n})
		}
		sort.Slice(items, func(i, j int) bool { return items[i].ticks > items[j].ticks })
		for _, p := range items {
			fmt.Printf("  %-10s %d\n", p.name, p.ticks)
		}
	}

	if *perTxn {
		fmt.Println("\nper-transaction statistics:")
		for _, s := range metrics.PerTxn(res) {
			fmt.Printf("  %-6s jobs=%-3d done=%-3d miss=%-3d blocked=%-4d maxblk=%-4d inv=%-4d avgresp=%.2f\n",
				s.Name, s.Jobs, s.Completed, s.Misses, s.TotalBlocked, s.MaxBlocked, s.TotalInv, s.AvgResponse())
		}
	}
	if !sum.Serializable {
		fmt.Fprintln(os.Stderr, "\nWARNING: history is not serializable")
		os.Exit(2)
	}
}

// runCompare simulates set once per named protocol — fanned across
// opts.Workers goroutines — and prints the side-by-side summary table. A
// deadlocked run is reported per protocol; a non-serializable history exits
// non-zero, same as single-protocol mode.
func runCompare(set *txn.Set, names []string, opts sim.Options) {
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	comps, err := sim.Compare(set, names, opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload %q under %d protocols (horizon %d, %d workers)\n\n",
		set.Name, len(comps), comps[0].Result.Horizon, opts.Workers)
	sums := make([]metrics.Summary, len(comps))
	for i, c := range comps {
		sums[i] = c.Summary
	}
	fmt.Print(metrics.Table(sums))
	clean := true
	for _, c := range comps {
		if c.Result.Deadlocked {
			fmt.Printf("\n%s: DEADLOCK at t=%d involving jobs %v\n",
				c.Result.Protocol, c.Result.DeadlockAt, c.Result.DeadlockCycle)
		}
		if !c.Summary.Serializable {
			fmt.Fprintf(os.Stderr, "\nWARNING: %s history is not serializable\n", c.Result.Protocol)
			clean = false
		}
	}
	if !clean {
		os.Exit(2)
	}
}

// runChaos hammers the live manager with seeded fault schedules and prints
// the aggregated failure-path statistics. Any invariant violation or
// non-serializable history exits non-zero with the offending seed.
func runChaos(set *txn.Set, schedules int, seed int64, firm bool) {
	fmt.Printf("chaos: %d seeded fault schedules over %q (firm deadlines: %v)\n",
		schedules, set.Name, firm)
	rep, err := rtm.RunChaos(set, rtm.ChaosConfig{
		Schedules:     schedules,
		Seed:          seed,
		FirmDeadlines: firm,
		PDelay:        0.08,
		PWakeup:       0.05,
		PAbort:        0.04,
		PCancel:       0.04,
	})
	fmt.Println(rep)
	if err != nil {
		fail(err)
	}
	fmt.Println("all schedules clean: no leaked locks/slots, histories serializable")
}

// runLiveBench drives the live manager for duration d with one worker per
// template, each committing instances of its own template flat out, then
// prints committed-transaction throughput and the cycle-abort count. The op
// log is trimmed between audit windows via ResetHistory so an arbitrarily
// long run stays in bounded memory.
func runLiveBench(set *txn.Set, d time.Duration) {
	m, err := rtm.New(set)
	if err != nil {
		fail(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var commits atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for _, tmpl := range set.Templates {
		wg.Add(1)
		go func(tmpl *txn.Template) {
			defer wg.Done()
			n := int64(0)
			for ctx.Err() == nil {
				err := m.Exec(ctx, tmpl.Name, func(tx *rtm.Txn) error {
					for _, st := range tmpl.Steps {
						var err error
						switch st.Kind {
						case txn.ReadStep:
							_, err = tx.Read(ctx, st.Item)
						case txn.WriteStep:
							err = tx.Write(ctx, st.Item, 1)
						default: // compute steps burn no manager time here
						}
						if err != nil {
							return err
						}
					}
					return nil
				})
				switch {
				case err == nil:
					n++
					if n%8192 == 0 {
						m.ResetHistory()
					}
				case errors.Is(err, rtm.ErrAborted):
					// Cycle victim: retry.
				case ctx.Err() != nil:
					// Budget expired mid-operation.
				default:
					fail(err)
				}
			}
			commits.Add(n)
		}(tmpl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := m.CheckInvariants(); err != nil {
		fail(err)
	}
	total := commits.Load()
	fmt.Printf("livebench: %d workers over %q for %v\n", len(set.Templates), set.Name, elapsed.Round(time.Millisecond))
	fmt.Printf("  committed %d transactions (%.0f txn/s), %d cycle aborts\n",
		total, float64(total)/elapsed.Seconds(), m.Aborts())
	fmt.Println("  invariants clean (locks, live maps, ceilings, priorities, history window)")
}

func loadSet(path, paper string) (*txn.Set, error) {
	switch {
	case paper != "":
		switch paper {
		case "example1":
			return papercases.Example1(), nil
		case "example3":
			return papercases.Example3(), nil
		case "example4":
			return papercases.Example4(), nil
		case "example5":
			return papercases.Example5(), nil
		}
		return nil, fmt.Errorf("unknown paper example %q", paper)
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return workload.Unmarshal(data)
	}
	return nil, fmt.Errorf("need -workload FILE or -paper NAME")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pcpsim:", err)
	os.Exit(1)
}
