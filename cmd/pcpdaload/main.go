// Command pcpdaload drives a pcpdad server with a seeded closed-loop
// workload and reports throughput and latency percentiles.
//
// The default output is a human-readable summary. -bench additionally
// prints a `go test -bench`-style line, so a load run feeds the same
// BENCH_<n>.json pipeline as the in-process benchmarks:
//
//	pcpdaload -addr 127.0.0.1:9723 -conns 64 -txns 10000 -bench | benchjson -label net
//
// -report writes the full JSON report to a file ("-" = stdout). The exit
// code is 0 when the run reached its committed-transaction target, 1
// otherwise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pcpda/internal/client"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:9723", "pcpdad address")
		conns    = flag.Int("conns", 64, "concurrent closed-loop connections")
		txns     = flag.Int("txns", 10000, "committed transactions to drive")
		seed     = flag.Int64("seed", 7, "workload seed")
		timeout  = flag.Duration("timeout", 2*time.Minute, "whole-run deadline")
		opTO     = flag.Duration("op-timeout", 10*time.Second, "per-operation deadline")
		report   = flag.String("report", "", "write JSON report to this file (\"-\" = stdout)")
		bench    = flag.Bool("bench", false, "print a benchjson-compatible benchmark line")
		attempts = flag.Int("attempts", 16, "max attempts per transaction")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		cancel()
	}()

	rep, err := client.RunLoad(ctx, client.LoadConfig{
		Addr: *addr, Conns: *conns, Txns: *txns, Seed: *seed,
		OpTimeout: *opTO, MaxAttempts: *attempts,
	})
	if err != nil {
		log.Printf("pcpdaload: %v", err)
		if rep == nil {
			return 1
		}
	}
	fmt.Printf("pcpdaload: %d committed (%d attempts, %d retries, %d failed) in %v\n",
		rep.Committed, rep.Attempts, rep.Retries, rep.Failed, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("pcpdaload: %.0f txn/s  p50=%v p90=%v p99=%v max=%v\n",
		rep.Throughput(), rep.P50, rep.P90, rep.P99, rep.Max)

	if *bench && rep.Committed > 0 {
		nsPerOp := float64(rep.Elapsed.Nanoseconds()) / float64(rep.Committed)
		fmt.Printf("BenchmarkPcpdaLoad/conns=%d %d %.1f ns/op %.1f txn/s %d p50-ns %d p99-ns %d retries\n",
			*conns, rep.Committed, nsPerOp, rep.Throughput(),
			rep.P50.Nanoseconds(), rep.P99.Nanoseconds(), rep.Retries)
	}
	if *report != "" {
		if err := writeReport(*report, rep); err != nil {
			log.Printf("pcpdaload: report: %v", err)
			return 1
		}
	}
	if int(rep.Committed) < *txns {
		return 1
	}
	return 0
}

func writeReport(path string, rep *client.LoadReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
