// Command pcpdaload drives a pcpdad server with a seeded workload and
// reports throughput, goodput and latency percentiles.
//
// Three modes:
//
//   - Closed loop (default): -conns workers each run one transaction at
//     a time until -txns have committed. Measures capacity.
//   - Open loop (-arrival-rate > 0): transactions arrive by a Poisson
//     process for -duration regardless of completion rate — the only
//     mode that can push the server past saturation. -deadline-budget
//     attaches a firm deadline to every BEGIN; commits later than it
//     count as deadline misses, not goodput.
//   - Sweep (-sweep "1,2,4"): measure the closed-loop saturation rate,
//     then run one open-loop step per multiplier of it and emit a JSON
//     sweep document (goodput, deadline-miss ratio, shed counts per
//     step) to -report. This is the BENCH_6/BENCH_7 overload artifact.
//     Sweep mode calibrates both client modes so the document always
//     records the pipelining speedup.
//
// -pipeline switches the driver to the wire-v3 pipelined client: each
// transaction is flushed as one tagged burst (BEGIN+steps+COMMIT) and
// responses demultiplex by tag, with up to -window requests in flight
// per connection. Against a v2-pinned server the client degrades to
// strict request/response transparently.
//
// -read-frac f (requires -pipeline) runs that fraction of transactions as
// declared read-only snapshot transactions: BEGIN(read-only) bypasses
// admission server-side and the reads execute lock-free against the
// version chains. With -stats (pcpdad's HTTP base URL) a 100%-read proof
// phase runs after the main load and asserts the manager's logical clock,
// lock-table ops and update counters did not move while the RO counters
// advanced. Sweep mode calibrates a third "mixed" saturation and embeds
// the proof in the document — the BENCH_8 read-path artifact.
//
// -nemesis interposes an in-process fault-injection proxy
// (internal/nemesis) between the driver and -addr, so the workload
// traverses seeded latency, resets, drops and one-way partitions.
//
// The default output is a human-readable summary. -bench additionally
// prints a `go test -bench`-style line, so a load run feeds the same
// BENCH_<n>.json pipeline as the in-process benchmarks:
//
//	pcpdaload -addr 127.0.0.1:9723 -conns 64 -txns 10000 -bench | benchjson -label net
//
// -report writes the full JSON report to a file ("-" = stdout). The exit
// code is 0 when the run reached its committed-transaction target (closed
// loop) or committed anything at all (open loop / sweep), 1 otherwise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pcpda/internal/client"
	"pcpda/internal/nemesis"
	"pcpda/internal/rtm"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:9723", "pcpdad address")
		conns    = flag.Int("conns", 64, "concurrent connections")
		txns     = flag.Int("txns", 10000, "closed-loop committed-transaction target")
		seed     = flag.Int64("seed", 7, "workload seed")
		timeout  = flag.Duration("timeout", 2*time.Minute, "whole-run deadline")
		opTO     = flag.Duration("op-timeout", 10*time.Second, "per-operation deadline")
		report   = flag.String("report", "", "write JSON report to this file (\"-\" = stdout)")
		bench    = flag.Bool("bench", false, "print a benchjson-compatible benchmark line")
		attempts = flag.Int("attempts", 16, "max attempts per transaction")
		label    = flag.String("label", "current", "label recorded in the sweep document")

		pipeline  = flag.Bool("pipeline", false, "use the wire-v3 pipelined client (whole transactions flushed as one tagged burst)")
		readFrac  = flag.Float64("read-frac", 0, "fraction of transactions issued as declared read-only snapshot transactions (requires -pipeline and a wire-v4 server)")
		statsURL  = flag.String("stats", "", "pcpdad stats HTTP base URL (e.g. http://127.0.0.1:9724); with -read-frac > 0, brackets a 100%-read proof phase asserting zero lock/mutex traffic")
		window    = flag.Int("window", 0, "pipelined: max tagged requests in flight per connection (0 = default)")
		spinUnder = flag.Duration("spin-under", 0, "open loop: spin instead of sleeping for the last stretch of each inter-arrival gap (0 = default; on coarse-timer hosts the default 10ms keeps offered rate honest)")

		arrivalRate = flag.Float64("arrival-rate", 0, "open loop: Poisson arrivals per second (0 = closed loop)")
		duration    = flag.Duration("duration", 5*time.Second, "open loop: arrival window per run")
		deadline    = flag.Duration("deadline-budget", 0, "open loop: firm deadline per transaction, from arrival (0 = none)")
		maxInFlight = flag.Int("max-inflight", 0, "open loop: arrivals in flight before client-side drop (0 = 4x conns)")
		sweep       = flag.String("sweep", "", "comma-separated saturation multipliers, e.g. \"1,2,3,4\" (implies open loop per step)")

		nemOn    = flag.Bool("nemesis", false, "route traffic through an in-process fault-injection proxy")
		nemSeed  = flag.Int64("nemesis-seed", 99, "nemesis fault seed")
		nemLat   = flag.Duration("nemesis-latency", 0, "nemesis added latency per chunk (beware: sleep granularity on coarse-timer hosts can multiply this)")
		nemJit   = flag.Duration("nemesis-jitter", 0, "nemesis latency jitter")
		nemReset = flag.Float64("nemesis-reset", 0.05, "per-connection mid-stream RST probability")
		nemDrop  = flag.Float64("nemesis-drop", 0.05, "per-connection silent-close probability")
		nemPart  = flag.Float64("nemesis-partition", 0.03, "per-connection one-way-partition probability")
		nemSlow  = flag.Int64("nemesis-slow-bps", 0, "nemesis slow-reader cap on the server->client direction, bytes/s (0 = off)")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		cancel()
	}()

	// With -nemesis the driver talks to the proxy and the proxy talks to
	// the real server; everything else is unchanged.
	target := *addr
	var proxy *nemesis.Proxy
	if *nemOn {
		p, err := nemesis.New(nemesis.Config{
			Listen: "127.0.0.1:0", Target: *addr, Seed: *nemSeed,
			Faults: nemesis.Faults{
				Latency: *nemLat, Jitter: *nemJit,
				PReset: *nemReset, PDrop: *nemDrop, PPartition: *nemPart,
				SlowReadBPS: *nemSlow,
			},
		})
		if err != nil {
			log.Printf("pcpdaload: nemesis: %v", err)
			return 1
		}
		proxy = p
		defer func() { _ = proxy.Close() }()
		target = proxy.Addr().String()
		log.Printf("pcpdaload: nemesis proxy %s -> %s (seed %d)", target, *addr, *nemSeed)
	}

	base := client.LoadConfig{
		Addr: target, Conns: *conns, Txns: *txns, Seed: *seed,
		OpTimeout: *opTO, MaxAttempts: *attempts,
		ArrivalRate: *arrivalRate, Duration: *duration,
		DeadlineBudget: *deadline, MaxInFlight: *maxInFlight,
		Pipelined: *pipeline, Window: *window, SpinUnder: *spinUnder,
		ReadFrac: *readFrac,
	}

	if *sweep != "" {
		// The sweep calibrates and runs its baseline steps over the direct
		// path; with -nemesis each multiplier is additionally run through
		// the proxy so the document carries both curves.
		base.Addr = *addr
		return runSweep(ctx, base, *sweep, *label, *report, proxy, *statsURL)
	}

	rep, err := client.RunLoad(ctx, base)
	if err != nil {
		log.Printf("pcpdaload: %v", err)
		if rep == nil {
			return 1
		}
	}
	printReport(rep, base)
	if proxy != nil {
		logProxy(proxy)
	}
	if *bench && rep.Committed > 0 {
		mode := "strict"
		if *pipeline {
			mode = "pipelined"
		}
		nsPerOp := float64(rep.Elapsed.Nanoseconds()) / float64(rep.Committed)
		fmt.Printf("BenchmarkPcpdaLoad/conns=%d/%s %d %.1f ns/op %.1f txn/s %d p50-ns %d p99-ns %d retries\n",
			*conns, mode, rep.Committed, nsPerOp, rep.Throughput(),
			rep.P50.Nanoseconds(), rep.P99.Nanoseconds(), rep.Retries)
	}
	if *report != "" {
		if err := writeJSON(*report, rep); err != nil {
			log.Printf("pcpdaload: report: %v", err)
			return 1
		}
	}
	if *statsURL != "" && *readFrac > 0 {
		proof, err := runROProof(ctx, base, *statsURL)
		if err != nil {
			log.Printf("pcpdaload: ro-proof: %v", err)
			return 1
		}
		logROProof(proof)
		if !proof.Passed {
			return 1
		}
	}
	if base.ArrivalRate > 0 {
		if rep.Committed == 0 {
			return 1
		}
		return 0
	}
	if int(rep.Committed) < *txns {
		return 1
	}
	return 0
}

func printReport(rep *client.LoadReport, cfg client.LoadConfig) {
	fmt.Printf("pcpdaload: %d committed (%d attempts, %d retries, %d suppressed, %d failed) in %v\n",
		rep.Committed, rep.Attempts, rep.Retries, rep.RetriesSuppressed, rep.Failed,
		rep.Elapsed.Round(time.Millisecond))
	if rep.ROCommitted > 0 {
		fmt.Printf("pcpdaload: read mix: %d read-only committed, %d updates\n",
			rep.ROCommitted, rep.Committed-rep.ROCommitted)
	}
	fmt.Printf("pcpdaload: %.0f txn/s  p50=%v p90=%v p99=%v max=%v\n",
		rep.Throughput(), rep.P50, rep.P90, rep.P99, rep.Max)
	if cfg.ArrivalRate > 0 {
		fmt.Printf("pcpdaload: offered=%d overrun=%d on_time=%d goodput=%.0f txn/s shed=%d infeasible=%d\n",
			rep.Offered, rep.Overrun, rep.OnTime, rep.Goodput(), rep.Shed, rep.Infeasible)
		// Achieved-vs-offered exposes pacing error: on coarse-timer hosts a
		// sleeping arrival loop silently under-offers, which makes every
		// downstream ratio in the report a lie.
		fmt.Printf("pcpdaload: arrival rate offered=%.0f/s achieved=%.0f/s\n",
			rep.OfferedRate, rep.AchievedRate)
		// Whole-run achieved-vs-offered hides a collapse confined to one
		// stretch of the window; the slices localize it.
		for _, ps := range rep.Pacing {
			fmt.Printf("pcpdaload:   pace [%4.1fs,%4.1fs) offered=%.0f/s achieved=%.0f/s max_lag=%.1fms\n",
				ps.StartS, ps.EndS, ps.OfferedRate, ps.AchievedRate, ps.MaxLagMS)
		}
		for _, tr := range rep.Tiers {
			fmt.Printf("pcpdaload:   tier pri=%d offered=%d committed=%d on_time=%d shed=%d miss=%.3f\n",
				tr.Priority, tr.Offered, tr.Committed, tr.OnTime, tr.Shed, tr.MissRatio)
		}
	}
}

func logProxy(p *nemesis.Proxy) {
	st := p.Stats()
	log.Printf("pcpdaload: nemesis: conns=%d resets=%d drops=%d partitions=%d discarded=%d",
		st.Conns, st.Resets, st.Drops, st.Partitions, st.Discarded)
}

// sweepStep is one offered-load step of the overload sweep.
type sweepStep struct {
	Multiplier   float64 `json:"multiplier"`
	ArrivalRate  float64 `json:"arrival_rate"`
	AchievedRate float64 `json:"achieved_rate"` // what the pacer actually delivered
	Nemesis      bool    `json:"nemesis"`       // step ran through the fault proxy
	Pipelined    bool    `json:"pipelined"`     // step used the wire-v3 pipelined client
	ReadFrac     float64 `json:"read_frac,omitempty"` // fraction of arrivals run as read-only snapshots

	Offered     int64 `json:"offered"`
	Overrun     int64 `json:"overrun"`
	Committed   int64 `json:"committed"`
	ROCommitted int64 `json:"ro_committed,omitempty"`
	OnTime      int64 `json:"on_time"`
	Shed        int64 `json:"shed"`
	Infeasible  int64 `json:"infeasible"`
	Failed      int64 `json:"failed"`
	Retries     int64 `json:"retries"`
	Suppressed  int64 `json:"retries_suppressed"`

	ThroughputTPS float64 `json:"throughput_txn_s"`
	GoodputTPS    float64 `json:"goodput_txn_s"`
	MissRatio     float64 `json:"deadline_miss_ratio"`
	TopTierMiss   float64 `json:"top_tier_miss_ratio"`

	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	Tiers []client.TierReport `json:"tiers"`
	// Pacing carries the per-slice achieved-vs-offered arrival rates, so a
	// sweep row shows where in the window the pacer collapsed — the
	// whole-run AchievedRate averages such a collapse away.
	Pacing []client.PaceSlice `json:"pacing,omitempty"`
}

// sweepDoc is the BENCH_6 artifact: goodput and deadline misses as a
// function of offered load, in multiples of the measured saturation
// rate. PeakGoodput is taken over the baseline (fault-free) steps — the
// graceful-degradation criterion is judged on that curve; nemesis steps
// document how far the plateau survives injected network faults.
type sweepDoc struct {
	Label        string         `json:"label"`
	Date         string         `json:"date"`
	Go           string         `json:"go"`
	Nemesis      bool           `json:"nemesis"`
	NemesisStats *nemesis.Stats `json:"nemesis_stats,omitempty"`
	Conns        int            `json:"conns"`
	DeadlineMs   float64        `json:"deadline_budget_ms"`
	// SaturationTPS is the strict (one request/response in flight) closed-
	// loop rate; PipelinedSaturationTPS is the same burst with whole
	// transactions flushed as tagged wire-v3 bursts. Speedup is their
	// ratio — the headline number for the pipelined protocol.
	SaturationTPS          float64 `json:"saturation_txn_s"`
	PipelinedSaturationTPS float64 `json:"pipelined_saturation_txn_s"`
	Speedup                float64 `json:"pipelined_speedup"`
	Pipelined              bool    `json:"pipelined"` // open-loop steps used the pipelined client
	// ReadFrac > 0 adds a third calibrated mode: the pipelined client with
	// that fraction of transactions run as declared read-only snapshots.
	// MixedSaturationTPS against PipelinedSaturationTPS is the headline
	// read-path number (same build, same connection count, only the mix
	// differs); ROSpeedup is their ratio.
	ReadFrac           float64     `json:"read_frac,omitempty"`
	MixedSaturationTPS float64     `json:"mixed_saturation_txn_s,omitempty"`
	ROSpeedup          float64     `json:"ro_speedup,omitempty"`
	ROProof            *roProofDoc `json:"ro_proof,omitempty"`
	PeakGoodput        float64     `json:"peak_goodput_txn_s"`
	Steps              []sweepStep `json:"steps"`
}

// runSweep measures closed-loop saturation, then runs one open-loop step
// per multiplier and writes the sweep document.
func runSweep(ctx context.Context, base client.LoadConfig, spec, label, out string,
	proxy *nemesis.Proxy, statsURL string) int {
	mults, err := parseMults(spec)
	if err != nil {
		log.Printf("pcpdaload: -sweep: %v", err)
		return 1
	}
	if base.DeadlineBudget <= 0 {
		log.Printf("pcpdaload: -sweep requires -deadline-budget (goodput needs a deadline)")
		return 1
	}
	if base.ReadFrac > 0 && !base.Pipelined {
		log.Printf("pcpdaload: -read-frac requires -pipeline")
		return 1
	}

	// Calibration: closed-loop bursts over the direct path measure what
	// the system can absorb. Both client modes are calibrated every time
	// so the document always carries the pipelining speedup; the open-loop
	// multipliers then step off the rate of the mode the steps will use.
	// Strict and pipelined calibrations are always write-only so the
	// write-path numbers stay comparable across builds; -read-frac adds a
	// third calibrated mode, pipelined with the requested read mix.
	type runMode struct {
		name      string
		pipelined bool
		readFrac  float64
		sat       float64
	}
	calibrate := func(mode *runMode) bool {
		cal := base
		cal.ArrivalRate = 0
		cal.Pipelined = mode.pipelined
		cal.ReadFrac = mode.readFrac
		log.Printf("pcpdaload: sweep: calibrating %s saturation (%d conns, %d txns)", mode.name, cal.Conns, cal.Txns)
		calRep, err := client.RunLoad(ctx, cal)
		if err != nil || calRep.Committed == 0 {
			log.Printf("pcpdaload: sweep %s calibration failed: %v", mode.name, err)
			return false
		}
		mode.sat = calRep.Throughput()
		log.Printf("pcpdaload: sweep: %s saturation = %.0f txn/s", mode.name, mode.sat)
		return true
	}
	strict := &runMode{name: "strict"}
	pipe := &runMode{name: "pipelined", pipelined: true}
	if !calibrate(strict) || !calibrate(pipe) {
		return 1
	}
	// With -pipeline the sweep runs every multiplier in each client mode
	// (paired rows, distinguished by the step's pipelined/read_frac
	// fields), each stepping off its own mode's saturation so a 2x step
	// means 2x of what that client can absorb.
	modes := []*runMode{strict}
	var mixed *runMode
	if base.Pipelined {
		modes = append(modes, pipe)
		if base.ReadFrac > 0 {
			mixed = &runMode{name: fmt.Sprintf("mixed(%.0f%% read)", base.ReadFrac*100),
				pipelined: true, readFrac: base.ReadFrac}
			if !calibrate(mixed) {
				return 1
			}
			modes = append(modes, mixed)
		}
	}

	doc := &sweepDoc{
		Label: label, Date: time.Now().UTC().Format(time.RFC3339),
		Go: runtime.Version(), Nemesis: proxy != nil,
		Conns:                  base.Conns,
		DeadlineMs:             float64(base.DeadlineBudget) / float64(time.Millisecond),
		SaturationTPS:          strict.sat,
		PipelinedSaturationTPS: pipe.sat,
		Speedup:                pipe.sat / strict.sat,
		Pipelined:              base.Pipelined,
	}
	if mixed != nil {
		doc.ReadFrac = base.ReadFrac
		doc.MixedSaturationTPS = mixed.sat
		doc.ROSpeedup = mixed.sat / pipe.sat
	}
	for _, m := range mults {
		variants := []bool{false}
		if proxy != nil {
			variants = append(variants, true)
		}
		for _, mode := range modes {
			for _, faulted := range variants {
				step := base
				step.Pipelined = mode.pipelined
				step.ReadFrac = mode.readFrac
				step.ArrivalRate = mode.sat * m
				step.RetryBudget = nil // fresh budget per step
				tag := ""
				if mode.pipelined {
					tag = " [" + mode.name + "]"
				}
				if faulted {
					step.Addr = proxy.Addr().String()
					tag += " [nemesis]"
				}
				log.Printf("pcpdaload: sweep: step %.2fx%s -> %.0f arrivals/s for %v",
					m, tag, step.ArrivalRate, step.Duration)
				rep, err := client.RunLoad(ctx, step)
				if err != nil {
					log.Printf("pcpdaload: sweep step %.2fx%s: %v", m, tag, err)
					return 1
				}
				st := sweepStep{
					Multiplier: m, ArrivalRate: step.ArrivalRate,
					AchievedRate: rep.AchievedRate,
					Nemesis:      faulted, Pipelined: step.Pipelined,
					ReadFrac:     step.ReadFrac,
					Offered:      rep.Offered, Overrun: rep.Overrun,
					Committed: rep.Committed, ROCommitted: rep.ROCommitted,
					OnTime: rep.OnTime,
					Shed:   rep.Shed, Infeasible: rep.Infeasible, Failed: rep.Failed,
					Retries: rep.Retries, Suppressed: rep.RetriesSuppressed,
					ThroughputTPS: rep.Throughput(), GoodputTPS: rep.Goodput(),
					P50Ms: ms(rep.P50), P99Ms: ms(rep.P99), MaxMs: ms(rep.Max),
					Tiers: rep.Tiers, Pacing: rep.Pacing,
				}
				if rep.Offered > 0 {
					st.MissRatio = 1 - float64(rep.OnTime)/float64(rep.Offered)
				}
				if len(rep.Tiers) > 0 {
					st.TopTierMiss = rep.Tiers[0].MissRatio
				}
				doc.Steps = append(doc.Steps, st)
				if !faulted && st.GoodputTPS > doc.PeakGoodput {
					doc.PeakGoodput = st.GoodputTPS
				}
				log.Printf("pcpdaload: sweep: %.2fx%s offered=%d goodput=%.0f txn/s miss=%.3f top-tier-miss=%.3f shed=%d",
					m, tag, st.Offered, st.GoodputTPS, st.MissRatio, st.TopTierMiss, st.Shed)
			}
		}
	}
	if statsURL != "" && base.ReadFrac > 0 {
		proof, err := runROProof(ctx, base, statsURL)
		if err != nil {
			log.Printf("pcpdaload: ro-proof: %v", err)
			return 1
		}
		logROProof(proof)
		doc.ROProof = proof
		if !proof.Passed {
			return 1
		}
	}
	if proxy != nil {
		st := proxy.Stats()
		doc.NemesisStats = &st
		logProxy(proxy)
	}
	if out == "" {
		out = "-"
	}
	if err := writeJSON(out, doc); err != nil {
		log.Printf("pcpdaload: report: %v", err)
		return 1
	}
	for _, st := range doc.Steps {
		if st.Committed == 0 {
			log.Printf("pcpdaload: sweep step %.2fx committed nothing", st.Multiplier)
			return 1
		}
	}
	return 0
}

// roProofDoc is the zero-traffic witness for the read-only path: a
// closed-loop phase of 100% declared read-only transactions, bracketed by
// two /stats fetches. The update-path deltas (logical clock, lock-table
// mutations, update begins/commits, lock waits) must all be exactly zero
// while the RO counters advanced by at least the committed count — the
// manager ticks its clock under its mutex on every update-path operation,
// so a zero clock delta is a zero-mutex-acquisition proof, and a zero
// lock-table ops delta is a zero-lock-traffic proof.
type roProofDoc struct {
	Txns              int64 `json:"txns"` // read-only commits observed by the client
	ROBeginsDelta     int64 `json:"ro_begins_delta"`
	ROReadsDelta      int64 `json:"ro_reads_delta"`
	ROCommitsDelta    int64 `json:"ro_commits_delta"`
	ClockDelta        int64 `json:"clock_delta"`          // manager-mutex-held operations: must be 0
	LockTableOpsDelta int64 `json:"lock_table_ops_delta"` // lock acquire/release mutations: must be 0
	BeginsDelta       int64 `json:"begins_delta"`         // update-path begins: must be 0
	CommitsDelta      int64 `json:"commits_delta"`        // update-path commits: must be 0
	LockWaitsDelta    int64 `json:"lock_waits_delta"`     // blocking episodes: must be 0
	Passed            bool  `json:"passed"`
}

// statsDoc mirrors the slice of pcpdad's /stats document the proof needs.
type statsDoc struct {
	Manager rtm.Stats `json:"manager"`
}

func fetchStats(ctx context.Context, baseURL string) (*statsDoc, error) {
	url := strings.TrimSuffix(baseURL, "/") + "/stats"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var doc statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("GET %s: %w", url, err)
	}
	return &doc, nil
}

// runROProof runs the 100%-read closed-loop phase between two /stats
// fetches. The server must otherwise be idle (the caller runs it after
// its load phases have fully drained).
func runROProof(ctx context.Context, base client.LoadConfig, statsURL string) (*roProofDoc, error) {
	before, err := fetchStats(ctx, statsURL)
	if err != nil {
		return nil, err
	}
	cfg := base
	cfg.ArrivalRate = 0
	cfg.Pipelined = true
	cfg.ReadFrac = 1
	cfg.RetryBudget = nil
	if cfg.Txns > 5000 {
		cfg.Txns = 5000 // a short burst is proof enough
	}
	log.Printf("pcpdaload: ro-proof: %d read-only transactions, bracketed by %s/stats", cfg.Txns, statsURL)
	rep, err := client.RunLoad(ctx, cfg)
	if err != nil {
		return nil, err
	}
	after, err := fetchStats(ctx, statsURL)
	if err != nil {
		return nil, err
	}
	b, a := before.Manager, after.Manager
	p := &roProofDoc{
		Txns:              rep.ROCommitted,
		ROBeginsDelta:     a.ROBegins - b.ROBegins,
		ROReadsDelta:      a.ROReads - b.ROReads,
		ROCommitsDelta:    a.ROCommits - b.ROCommits,
		ClockDelta:        a.Clock - b.Clock,
		LockTableOpsDelta: a.LockTableOps - b.LockTableOps,
		BeginsDelta:       int64(a.Begins - b.Begins),
		CommitsDelta:      int64(a.Commits - b.Commits),
		LockWaitsDelta:    int64(a.LockWaits - b.LockWaits),
	}
	p.Passed = p.Txns > 0 &&
		p.ROCommitsDelta >= p.Txns &&
		p.ClockDelta == 0 && p.LockTableOpsDelta == 0 &&
		p.BeginsDelta == 0 && p.CommitsDelta == 0 && p.LockWaitsDelta == 0
	return p, nil
}

func logROProof(p *roProofDoc) {
	verdict := "PASSED"
	if !p.Passed {
		verdict = "FAILED"
	}
	log.Printf("pcpdaload: ro-proof %s: %d ro commits (server deltas: ro_begins=%d ro_reads=%d ro_commits=%d)",
		verdict, p.Txns, p.ROBeginsDelta, p.ROReadsDelta, p.ROCommitsDelta)
	log.Printf("pcpdaload: ro-proof deltas (all must be 0): clock=%d lock_table_ops=%d begins=%d commits=%d lock_waits=%d",
		p.ClockDelta, p.LockTableOpsDelta, p.BeginsDelta, p.CommitsDelta, p.LockWaitsDelta)
}

func parseMults(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("bad multiplier %q", part)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty multiplier list")
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
