// Command pcpdaload drives a pcpdad server with a seeded workload and
// reports throughput, goodput and latency percentiles.
//
// Three modes:
//
//   - Closed loop (default): -conns workers each run one transaction at
//     a time until -txns have committed. Measures capacity.
//   - Open loop (-arrival-rate > 0): transactions arrive by a Poisson
//     process for -duration regardless of completion rate — the only
//     mode that can push the server past saturation. -deadline-budget
//     attaches a firm deadline to every BEGIN; commits later than it
//     count as deadline misses, not goodput.
//   - Sweep (-sweep "1,2,4"): measure the closed-loop saturation rate,
//     then run one open-loop step per multiplier of it and emit a JSON
//     sweep document (goodput, deadline-miss ratio, shed counts per
//     step) to -report. This is the BENCH_6/BENCH_7 overload artifact.
//     Sweep mode calibrates both client modes so the document always
//     records the pipelining speedup.
//
// -pipeline switches the driver to the wire-v3 pipelined client: each
// transaction is flushed as one tagged burst (BEGIN+steps+COMMIT) and
// responses demultiplex by tag, with up to -window requests in flight
// per connection. Against a v2-pinned server the client degrades to
// strict request/response transparently.
//
// -nemesis interposes an in-process fault-injection proxy
// (internal/nemesis) between the driver and -addr, so the workload
// traverses seeded latency, resets, drops and one-way partitions.
//
// The default output is a human-readable summary. -bench additionally
// prints a `go test -bench`-style line, so a load run feeds the same
// BENCH_<n>.json pipeline as the in-process benchmarks:
//
//	pcpdaload -addr 127.0.0.1:9723 -conns 64 -txns 10000 -bench | benchjson -label net
//
// -report writes the full JSON report to a file ("-" = stdout). The exit
// code is 0 when the run reached its committed-transaction target (closed
// loop) or committed anything at all (open loop / sweep), 1 otherwise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pcpda/internal/client"
	"pcpda/internal/nemesis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:9723", "pcpdad address")
		conns    = flag.Int("conns", 64, "concurrent connections")
		txns     = flag.Int("txns", 10000, "closed-loop committed-transaction target")
		seed     = flag.Int64("seed", 7, "workload seed")
		timeout  = flag.Duration("timeout", 2*time.Minute, "whole-run deadline")
		opTO     = flag.Duration("op-timeout", 10*time.Second, "per-operation deadline")
		report   = flag.String("report", "", "write JSON report to this file (\"-\" = stdout)")
		bench    = flag.Bool("bench", false, "print a benchjson-compatible benchmark line")
		attempts = flag.Int("attempts", 16, "max attempts per transaction")
		label    = flag.String("label", "current", "label recorded in the sweep document")

		pipeline  = flag.Bool("pipeline", false, "use the wire-v3 pipelined client (whole transactions flushed as one tagged burst)")
		window    = flag.Int("window", 0, "pipelined: max tagged requests in flight per connection (0 = default)")
		spinUnder = flag.Duration("spin-under", 0, "open loop: spin instead of sleeping for the last stretch of each inter-arrival gap (0 = default; on coarse-timer hosts the default 10ms keeps offered rate honest)")

		arrivalRate = flag.Float64("arrival-rate", 0, "open loop: Poisson arrivals per second (0 = closed loop)")
		duration    = flag.Duration("duration", 5*time.Second, "open loop: arrival window per run")
		deadline    = flag.Duration("deadline-budget", 0, "open loop: firm deadline per transaction, from arrival (0 = none)")
		maxInFlight = flag.Int("max-inflight", 0, "open loop: arrivals in flight before client-side drop (0 = 4x conns)")
		sweep       = flag.String("sweep", "", "comma-separated saturation multipliers, e.g. \"1,2,3,4\" (implies open loop per step)")

		nemOn    = flag.Bool("nemesis", false, "route traffic through an in-process fault-injection proxy")
		nemSeed  = flag.Int64("nemesis-seed", 99, "nemesis fault seed")
		nemLat   = flag.Duration("nemesis-latency", 0, "nemesis added latency per chunk (beware: sleep granularity on coarse-timer hosts can multiply this)")
		nemJit   = flag.Duration("nemesis-jitter", 0, "nemesis latency jitter")
		nemReset = flag.Float64("nemesis-reset", 0.05, "per-connection mid-stream RST probability")
		nemDrop  = flag.Float64("nemesis-drop", 0.05, "per-connection silent-close probability")
		nemPart  = flag.Float64("nemesis-partition", 0.03, "per-connection one-way-partition probability")
		nemSlow  = flag.Int64("nemesis-slow-bps", 0, "nemesis slow-reader cap on the server->client direction, bytes/s (0 = off)")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		cancel()
	}()

	// With -nemesis the driver talks to the proxy and the proxy talks to
	// the real server; everything else is unchanged.
	target := *addr
	var proxy *nemesis.Proxy
	if *nemOn {
		p, err := nemesis.New(nemesis.Config{
			Listen: "127.0.0.1:0", Target: *addr, Seed: *nemSeed,
			Faults: nemesis.Faults{
				Latency: *nemLat, Jitter: *nemJit,
				PReset: *nemReset, PDrop: *nemDrop, PPartition: *nemPart,
				SlowReadBPS: *nemSlow,
			},
		})
		if err != nil {
			log.Printf("pcpdaload: nemesis: %v", err)
			return 1
		}
		proxy = p
		defer func() { _ = proxy.Close() }()
		target = proxy.Addr().String()
		log.Printf("pcpdaload: nemesis proxy %s -> %s (seed %d)", target, *addr, *nemSeed)
	}

	base := client.LoadConfig{
		Addr: target, Conns: *conns, Txns: *txns, Seed: *seed,
		OpTimeout: *opTO, MaxAttempts: *attempts,
		ArrivalRate: *arrivalRate, Duration: *duration,
		DeadlineBudget: *deadline, MaxInFlight: *maxInFlight,
		Pipelined: *pipeline, Window: *window, SpinUnder: *spinUnder,
	}

	if *sweep != "" {
		// The sweep calibrates and runs its baseline steps over the direct
		// path; with -nemesis each multiplier is additionally run through
		// the proxy so the document carries both curves.
		base.Addr = *addr
		return runSweep(ctx, base, *sweep, *label, *report, proxy)
	}

	rep, err := client.RunLoad(ctx, base)
	if err != nil {
		log.Printf("pcpdaload: %v", err)
		if rep == nil {
			return 1
		}
	}
	printReport(rep, base)
	if proxy != nil {
		logProxy(proxy)
	}
	if *bench && rep.Committed > 0 {
		mode := "strict"
		if *pipeline {
			mode = "pipelined"
		}
		nsPerOp := float64(rep.Elapsed.Nanoseconds()) / float64(rep.Committed)
		fmt.Printf("BenchmarkPcpdaLoad/conns=%d/%s %d %.1f ns/op %.1f txn/s %d p50-ns %d p99-ns %d retries\n",
			*conns, mode, rep.Committed, nsPerOp, rep.Throughput(),
			rep.P50.Nanoseconds(), rep.P99.Nanoseconds(), rep.Retries)
	}
	if *report != "" {
		if err := writeJSON(*report, rep); err != nil {
			log.Printf("pcpdaload: report: %v", err)
			return 1
		}
	}
	if base.ArrivalRate > 0 {
		if rep.Committed == 0 {
			return 1
		}
		return 0
	}
	if int(rep.Committed) < *txns {
		return 1
	}
	return 0
}

func printReport(rep *client.LoadReport, cfg client.LoadConfig) {
	fmt.Printf("pcpdaload: %d committed (%d attempts, %d retries, %d suppressed, %d failed) in %v\n",
		rep.Committed, rep.Attempts, rep.Retries, rep.RetriesSuppressed, rep.Failed,
		rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("pcpdaload: %.0f txn/s  p50=%v p90=%v p99=%v max=%v\n",
		rep.Throughput(), rep.P50, rep.P90, rep.P99, rep.Max)
	if cfg.ArrivalRate > 0 {
		fmt.Printf("pcpdaload: offered=%d overrun=%d on_time=%d goodput=%.0f txn/s shed=%d infeasible=%d\n",
			rep.Offered, rep.Overrun, rep.OnTime, rep.Goodput(), rep.Shed, rep.Infeasible)
		// Achieved-vs-offered exposes pacing error: on coarse-timer hosts a
		// sleeping arrival loop silently under-offers, which makes every
		// downstream ratio in the report a lie.
		fmt.Printf("pcpdaload: arrival rate offered=%.0f/s achieved=%.0f/s\n",
			rep.OfferedRate, rep.AchievedRate)
		for _, tr := range rep.Tiers {
			fmt.Printf("pcpdaload:   tier pri=%d offered=%d committed=%d on_time=%d shed=%d miss=%.3f\n",
				tr.Priority, tr.Offered, tr.Committed, tr.OnTime, tr.Shed, tr.MissRatio)
		}
	}
}

func logProxy(p *nemesis.Proxy) {
	st := p.Stats()
	log.Printf("pcpdaload: nemesis: conns=%d resets=%d drops=%d partitions=%d discarded=%d",
		st.Conns, st.Resets, st.Drops, st.Partitions, st.Discarded)
}

// sweepStep is one offered-load step of the overload sweep.
type sweepStep struct {
	Multiplier   float64 `json:"multiplier"`
	ArrivalRate  float64 `json:"arrival_rate"`
	AchievedRate float64 `json:"achieved_rate"` // what the pacer actually delivered
	Nemesis      bool    `json:"nemesis"`       // step ran through the fault proxy
	Pipelined    bool    `json:"pipelined"`     // step used the wire-v3 pipelined client

	Offered    int64 `json:"offered"`
	Overrun    int64 `json:"overrun"`
	Committed  int64 `json:"committed"`
	OnTime     int64 `json:"on_time"`
	Shed       int64 `json:"shed"`
	Infeasible int64 `json:"infeasible"`
	Failed     int64 `json:"failed"`
	Retries    int64 `json:"retries"`
	Suppressed int64 `json:"retries_suppressed"`

	ThroughputTPS float64 `json:"throughput_txn_s"`
	GoodputTPS    float64 `json:"goodput_txn_s"`
	MissRatio     float64 `json:"deadline_miss_ratio"`
	TopTierMiss   float64 `json:"top_tier_miss_ratio"`

	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	Tiers []client.TierReport `json:"tiers"`
}

// sweepDoc is the BENCH_6 artifact: goodput and deadline misses as a
// function of offered load, in multiples of the measured saturation
// rate. PeakGoodput is taken over the baseline (fault-free) steps — the
// graceful-degradation criterion is judged on that curve; nemesis steps
// document how far the plateau survives injected network faults.
type sweepDoc struct {
	Label        string         `json:"label"`
	Date         string         `json:"date"`
	Go           string         `json:"go"`
	Nemesis      bool           `json:"nemesis"`
	NemesisStats *nemesis.Stats `json:"nemesis_stats,omitempty"`
	Conns        int            `json:"conns"`
	DeadlineMs   float64        `json:"deadline_budget_ms"`
	// SaturationTPS is the strict (one request/response in flight) closed-
	// loop rate; PipelinedSaturationTPS is the same burst with whole
	// transactions flushed as tagged wire-v3 bursts. Speedup is their
	// ratio — the headline number for the pipelined protocol.
	SaturationTPS          float64     `json:"saturation_txn_s"`
	PipelinedSaturationTPS float64     `json:"pipelined_saturation_txn_s"`
	Speedup                float64     `json:"pipelined_speedup"`
	Pipelined              bool        `json:"pipelined"` // open-loop steps used the pipelined client
	PeakGoodput            float64     `json:"peak_goodput_txn_s"`
	Steps                  []sweepStep `json:"steps"`
}

// runSweep measures closed-loop saturation, then runs one open-loop step
// per multiplier and writes the sweep document.
func runSweep(ctx context.Context, base client.LoadConfig, spec, label, out string, proxy *nemesis.Proxy) int {
	mults, err := parseMults(spec)
	if err != nil {
		log.Printf("pcpdaload: -sweep: %v", err)
		return 1
	}
	if base.DeadlineBudget <= 0 {
		log.Printf("pcpdaload: -sweep requires -deadline-budget (goodput needs a deadline)")
		return 1
	}

	// Calibration: closed-loop bursts over the direct path measure what
	// the system can absorb. Both client modes are calibrated every time
	// so the document always carries the pipelining speedup; the open-loop
	// multipliers then step off the rate of the mode the steps will use.
	calibrate := func(pipelined bool) (float64, bool) {
		cal := base
		cal.ArrivalRate = 0
		cal.Pipelined = pipelined
		mode := "strict"
		if pipelined {
			mode = "pipelined"
		}
		log.Printf("pcpdaload: sweep: calibrating %s saturation (%d conns, %d txns)", mode, cal.Conns, cal.Txns)
		calRep, err := client.RunLoad(ctx, cal)
		if err != nil || calRep.Committed == 0 {
			log.Printf("pcpdaload: sweep %s calibration failed: %v", mode, err)
			return 0, false
		}
		log.Printf("pcpdaload: sweep: %s saturation = %.0f txn/s", mode, calRep.Throughput())
		return calRep.Throughput(), true
	}
	strictSat, ok := calibrate(false)
	if !ok {
		return 1
	}
	pipeSat, ok := calibrate(true)
	if !ok {
		return 1
	}
	// With -pipeline the sweep runs every multiplier in both client modes
	// (paired rows, distinguished by the step's pipelined flag), each
	// stepping off its own mode's saturation so a 2x step means 2x of what
	// that client can absorb.
	modes := []bool{false}
	if base.Pipelined {
		modes = append(modes, true)
	}
	satOf := func(pipelined bool) float64 {
		if pipelined {
			return pipeSat
		}
		return strictSat
	}

	doc := &sweepDoc{
		Label: label, Date: time.Now().UTC().Format(time.RFC3339),
		Go: runtime.Version(), Nemesis: proxy != nil,
		Conns:                  base.Conns,
		DeadlineMs:             float64(base.DeadlineBudget) / float64(time.Millisecond),
		SaturationTPS:          strictSat,
		PipelinedSaturationTPS: pipeSat,
		Speedup:                pipeSat / strictSat,
		Pipelined:              base.Pipelined,
	}
	for _, m := range mults {
		variants := []bool{false}
		if proxy != nil {
			variants = append(variants, true)
		}
		for _, pipelined := range modes {
			for _, faulted := range variants {
				step := base
				step.Pipelined = pipelined
				step.ArrivalRate = satOf(pipelined) * m
				step.RetryBudget = nil // fresh budget per step
				tag := ""
				if pipelined {
					tag = " [pipelined]"
				}
				if faulted {
					step.Addr = proxy.Addr().String()
					tag += " [nemesis]"
				}
				log.Printf("pcpdaload: sweep: step %.2fx%s -> %.0f arrivals/s for %v",
					m, tag, step.ArrivalRate, step.Duration)
				rep, err := client.RunLoad(ctx, step)
				if err != nil {
					log.Printf("pcpdaload: sweep step %.2fx%s: %v", m, tag, err)
					return 1
				}
				st := sweepStep{
					Multiplier: m, ArrivalRate: step.ArrivalRate,
					AchievedRate: rep.AchievedRate,
					Nemesis:      faulted, Pipelined: step.Pipelined,
					Offered: rep.Offered, Overrun: rep.Overrun,
					Committed: rep.Committed, OnTime: rep.OnTime,
					Shed: rep.Shed, Infeasible: rep.Infeasible, Failed: rep.Failed,
					Retries: rep.Retries, Suppressed: rep.RetriesSuppressed,
					ThroughputTPS: rep.Throughput(), GoodputTPS: rep.Goodput(),
					P50Ms: ms(rep.P50), P99Ms: ms(rep.P99), MaxMs: ms(rep.Max),
					Tiers: rep.Tiers,
				}
				if rep.Offered > 0 {
					st.MissRatio = 1 - float64(rep.OnTime)/float64(rep.Offered)
				}
				if len(rep.Tiers) > 0 {
					st.TopTierMiss = rep.Tiers[0].MissRatio
				}
				doc.Steps = append(doc.Steps, st)
				if !faulted && st.GoodputTPS > doc.PeakGoodput {
					doc.PeakGoodput = st.GoodputTPS
				}
				log.Printf("pcpdaload: sweep: %.2fx%s offered=%d goodput=%.0f txn/s miss=%.3f top-tier-miss=%.3f shed=%d",
					m, tag, st.Offered, st.GoodputTPS, st.MissRatio, st.TopTierMiss, st.Shed)
			}
		}
	}
	if proxy != nil {
		st := proxy.Stats()
		doc.NemesisStats = &st
		logProxy(proxy)
	}
	if out == "" {
		out = "-"
	}
	if err := writeJSON(out, doc); err != nil {
		log.Printf("pcpdaload: report: %v", err)
		return 1
	}
	for _, st := range doc.Steps {
		if st.Committed == 0 {
			log.Printf("pcpdaload: sweep step %.2fx committed nothing", st.Multiplier)
			return 1
		}
	}
	return 0
}

func parseMults(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("bad multiplier %q", part)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty multiplier list")
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
