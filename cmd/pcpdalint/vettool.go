// vettool.go implements enough of the cmd/go unitchecker protocol for
// pcpdalint to run as `go vet -vettool=pcpdalint ./...`: cmd/go hands the
// tool a JSON config per package (file list, import map, export-data
// locations); the tool type-checks from export data, runs the suite and
// reports findings on stderr with exit status 2, which vet surfaces as
// ordinary diagnostics. Facts are not exchanged (the suite needs none), but
// the vetx output file must still be produced or cmd/go fails the action.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pcpda/internal/lint"
	"pcpda/internal/lint/all"
)

// vetConfig mirrors the fields of cmd/go's vet JSON config that the suite
// needs; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcpdalint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pcpdalint: parsing vet config:", err)
		return 1
	}
	// cmd/go requires the facts file even though the suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("pcpdalint: no facts"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "pcpdalint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// The protocol contracts cover production code: the standalone driver
	// never loads _test.go files, and the vet path must agree or the two
	// runners would disagree about whether the tree is clean (tests freely
	// import sched to drive the kernel directly). cmd/go also invokes the
	// tool for test-augmented package variants, whose extra files are all
	// _test.go — those reduce to the already-analyzed base package.
	prodFiles := cfg.GoFiles[:0:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			prodFiles = append(prodFiles, name)
		}
	}
	if len(prodFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range prodFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "pcpdalint:", err)
			return 1
		}
		files = append(files, f)
	}

	// Type-check against the export data cmd/go already compiled.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "pcpdalint:", err)
		return 1
	}

	pkg := &lint.Package{
		PkgPath:   cfg.ImportPath,
		Dir:       cfg.Dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, all.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcpdalint:", err)
		return 1
	}
	sup := loadVetSuppressions(cfg.Dir)
	kept, _ := sup.Filter(findings)
	for _, f := range kept {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(kept) > 0 {
		return 2
	}
	return 0
}

// loadVetSuppressions finds the module's suppression file above dir; a
// missing file is an empty set. Stale-entry auditing is the standalone
// driver's job — under vet each package sees only its own findings.
func loadVetSuppressions(dir string) *lint.Suppressions {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			sup, err := lint.LoadSuppressions(filepath.Join(d, lint.SuppressFile))
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcpdalint:", err)
				return &lint.Suppressions{}
			}
			return sup
		}
		parent := filepath.Dir(d)
		if parent == d {
			return &lint.Suppressions{}
		}
		d = parent
	}
}
