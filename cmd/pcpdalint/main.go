// Command pcpdalint runs the protocol-contract analyzer suite (DESIGN.md
// §10) over the module:
//
//	go run ./cmd/pcpdalint ./...
//
// It exits 0 when every finding is either absent or justified in the
// committed suppression file (.pcpdalint-suppressions at the module root),
// and 1 otherwise. Stale suppression entries — entries that no longer
// match any finding — are also fatal, so the file cannot rot.
//
// The binary doubles as a vet tool (see vettool.go):
//
//	go build -o /tmp/pcpdalint ./cmd/pcpdalint
//	go vet -vettool=/tmp/pcpdalint ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pcpda/internal/lint"
	"pcpda/internal/lint/all"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet -vettool probes the binary with -V=full (version for the build
	// cache), then -flags (JSON list of tool flags; the suite has none it
	// exposes to vet), then invokes it with a unitchecker-style *.cfg
	// argument per package; all three route to vettool behavior.
	for _, a := range args {
		if strings.HasPrefix(a, "-V") {
			fmt.Printf("pcpdalint version pcpda-lint-1 sum h1:pcpda-lint-suite\n")
			return 0
		}
		if a == "-flags" {
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0])
	}

	fs := flag.NewFlagSet("pcpdalint", flag.ExitOnError)
	var (
		listOnly = fs.Bool("list", false, "list the analyzers and exit")
		suppress = fs.String("suppressions", "", "suppression file (default: <module root>/"+lint.SuppressFile+")")
		verbose  = fs.Bool("v", false, "also print suppressed findings")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array (machine-readable; suppressed findings included, marked)")
		ghOut    = fs.Bool("gh", false, "also emit GitHub Actions ::error workflow annotations for unsuppressed findings")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pcpdalint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listOnly {
		for _, a := range all.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcpdalint:", err)
		return 2
	}
	modPath, modDir, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcpdalint:", err)
		return 2
	}
	supPath := *suppress
	if supPath == "" {
		supPath = filepath.Join(modDir, lint.SuppressFile)
	}
	sup, err := lint.LoadSuppressions(supPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcpdalint:", err)
		return 2
	}

	start := time.Now()
	loader := lint.NewLoader(lint.ModuleResolver(modPath, modDir))
	pkgs, err := loader.LoadPatterns(modPath, modDir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcpdalint:", err)
		return 2
	}
	findings, err := lint.RunAnalyzers(pkgs, all.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcpdalint:", err)
		return 2
	}
	elapsed := time.Since(start)
	kept, suppressed := sup.Filter(findings)
	if *jsonOut {
		if err := writeJSON(os.Stdout, kept, suppressed); err != nil {
			fmt.Fprintln(os.Stderr, "pcpdalint:", err)
			return 2
		}
	} else {
		if *verbose {
			for _, f := range suppressed {
				fmt.Printf("suppressed: %s\n", f)
			}
		}
		for _, f := range kept {
			fmt.Println(f)
		}
	}
	if *ghOut {
		for _, f := range kept {
			// %0A etc. need no escaping here: messages are single-line.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=pcpdalint %s::%s\n",
				f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
		}
	}
	bad := len(kept) > 0
	// Stale-entry auditing only makes sense when every package the
	// suppressions could refer to was analyzed; on a scoped run an entry
	// for an unanalyzed package would be reported stale spuriously.
	wholeModule := false
	for _, p := range patterns {
		if p == "./..." {
			wholeModule = true
		}
	}
	if wholeModule {
		for _, e := range sup.Unused() {
			fmt.Fprintf(os.Stderr, "pcpdalint: %s:%d: stale suppression (matched nothing): %s %q %q\n", supPath, e.Line, e.Analyzer, e.PathSub, e.MsgSub)
			bad = true
		}
	}
	if bad {
		return 1
	}
	if !*jsonOut {
		fmt.Printf("pcpdalint: %d packages clean in %v (%d findings suppressed with justification)\n",
			len(pkgs), elapsed.Round(time.Millisecond), len(suppressed))
	}
	return 0
}

// jsonFinding is the machine-readable form of one diagnostic.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// writeJSON emits every finding — kept first, then suppressed (marked) —
// as one indented JSON array, so CI tooling can consume the run without
// scraping the human format.
func writeJSON(w *os.File, kept, suppressed []lint.Finding) error {
	out := make([]jsonFinding, 0, len(kept)+len(suppressed))
	for _, f := range kept {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer, File: f.Position.Filename,
			Line: f.Position.Line, Column: f.Position.Column, Message: f.Message,
		})
	}
	for _, f := range suppressed {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer, File: f.Position.Filename,
			Line: f.Position.Line, Column: f.Position.Column, Message: f.Message,
			Suppressed: true,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
