// Command benchjson converts `go test -bench` output (read from stdin) into
// a JSON document suitable for committing alongside a PR as a performance
// record (BENCH_<n>.json). The text format stays benchstat-compatible; this
// tool only adds a machine-readable mirror plus optional baseline deltas.
//
//	go test -run '^$' -bench . -benchmem ./internal/rtm | benchjson -label current
//	benchjson -label current -baseline old.json < bench.txt > BENCH_2.json
//
// With -baseline, the baseline file's "results" are embedded under
// "baseline" and a "delta" section reports, per benchmark present in both
// runs, the speedup (baseline ns/op ÷ current ns/op) and the allocation
// ratio (current allocs/op ÷ baseline allocs/op).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Label    string   `json:"label"`
	Date     string   `json:"date"`
	Go       string   `json:"go"`
	Maxprocs int      `json:"gomaxprocs"`
	Results  []Result `json:"results"`
	Baseline *Doc     `json:"baseline,omitempty"`
	Delta    []Delta  `json:"delta,omitempty"`
	Notes    []string `json:"notes,omitempty"`
}

// Delta compares one benchmark across the two runs.
type Delta struct {
	Name       string  `json:"name"`
	Speedup    float64 `json:"speedup"`     // baseline ns/op ÷ current ns/op
	AllocRatio float64 `json:"alloc_ratio"` // current allocs/op ÷ baseline allocs/op
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(r *bufio.Scanner) ([]Result, error) {
	var out []Result
	for r.Scan() {
		mm := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if mm == nil {
			continue
		}
		iters, err := strconv.ParseInt(mm[2], 10, 64)
		if err != nil {
			return nil, err
		}
		res := Result{Name: mm[1], Iters: iters}
		fields := strings.Fields(mm[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			val := v
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = &val
			case "allocs/op":
				res.AllocsPerOp = &val
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[fields[i+1]] = val
			}
		}
		out = append(out, res)
	}
	return out, r.Err()
}

func main() {
	label := flag.String("label", "current", "label for this run")
	baselinePath := flag.String("baseline", "", "previously emitted JSON to embed and diff against")
	note := flag.String("note", "", "free-form note to record")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc := Doc{
		Label:    *label,
		Date:     time.Now().UTC().Format(time.RFC3339),
		Go:       runtime.Version(),
		Maxprocs: runtime.GOMAXPROCS(0),
		Results:  results,
	}
	if *note != "" {
		doc.Notes = append(doc.Notes, *note)
	}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Doc
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		base.Baseline = nil // never nest more than one level
		base.Delta = nil
		doc.Baseline = &base
		byName := make(map[string]Result, len(base.Results))
		for _, r := range base.Results {
			byName[r.Name] = r
		}
		for _, cur := range results {
			old, ok := byName[cur.Name]
			if !ok || cur.NsPerOp == 0 {
				continue
			}
			d := Delta{Name: cur.Name, Speedup: old.NsPerOp / cur.NsPerOp}
			if cur.AllocsPerOp != nil && old.AllocsPerOp != nil && *old.AllocsPerOp > 0 {
				d.AllocRatio = *cur.AllocsPerOp / *old.AllocsPerOp
			}
			doc.Delta = append(doc.Delta, d)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
