// Command schedcheck runs the paper's Section 9 worst-case schedulability
// analysis on a periodic workload: per-protocol blocking transaction sets,
// worst-case blocking terms B_i, the rate-monotonic sufficient condition,
// and (optionally) exact response-time analysis.
//
//	schedcheck -workload set.json
//	schedcheck -workload set.json -rta
package main

import (
	"flag"
	"fmt"
	"os"

	"pcpda/internal/analysis"
	"pcpda/internal/txn"
	"pcpda/internal/workload"
)

func main() {
	var (
		path = flag.String("workload", "", "workload JSON file (periodic transactions)")
		rta  = flag.Bool("rta", false, "also run exact response-time analysis")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "schedcheck: need -workload FILE")
		os.Exit(1)
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		fail(err)
	}
	set, err := workload.Unmarshal(data)
	if err != nil {
		fail(err)
	}
	ceil := txn.ComputeCeilings(set)

	fmt.Printf("workload %q: %d transactions, utilization %.3f\n\n",
		set.Name, len(set.Templates), set.Utilization())
	for _, t := range set.ByPriorityDesc() {
		fmt.Printf("  %-6s pri=%-3d Pd=%-5d C=%-4d %s\n",
			t.Name, t.Priority, t.Period, t.Exec(), t.Signature(set.Catalog))
	}

	fmt.Println("\nblocking transaction sets and worst-case blocking:")
	fmt.Printf("  %-6s", "txn")
	for _, k := range analysis.Kinds {
		fmt.Printf(" | %-16s B", k)
	}
	fmt.Println()
	for _, t := range set.ByPriorityDesc() {
		fmt.Printf("  %-6s", t.Name)
		for _, k := range analysis.Kinds {
			bts := analysis.BTS(set, ceil, k, t)
			b := analysis.WorstCaseBlocking(set, ceil, k, t)
			fmt.Printf(" | %-16s %d", nameList(bts), b)
		}
		fmt.Println()
	}

	fmt.Println("\nrate-monotonic sufficient condition (paper Section 9):")
	for _, k := range analysis.Kinds {
		rep, err := analysis.RMTest(set, k)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-8s schedulable=%v\n", k, rep.Schedulable)
		for i, v := range rep.Verdicts {
			mark := "ok"
			if !v.OK {
				mark = "FAIL"
			}
			fmt.Printf("    i=%-2d %-6s B=%-4d util+block=%.3f bound=%.3f %s\n",
				i+1, v.Txn.Name, v.B, v.Utilization, v.Bound, mark)
		}
	}

	if *rta {
		fmt.Println("\nexact response-time analysis:")
		for _, k := range analysis.Kinds {
			rep, err := analysis.ResponseTimeTest(set, k)
			if err != nil {
				fail(err)
			}
			fmt.Printf("  %-8s schedulable=%v\n", k, rep.Schedulable)
			for _, v := range rep.Verdicts {
				mark := "ok"
				if !v.OK {
					mark = "FAIL"
				}
				fmt.Printf("    %-6s B=%-4d R=%-6d D=%-6d %s\n",
					v.Txn.Name, v.B, v.Response, v.Txn.RelativeDeadline(), mark)
			}
		}
	}
}

func nameList(ts []*txn.Template) string {
	if len(ts) == 0 {
		return "∅"
	}
	out := ""
	for i, t := range ts {
		if i > 0 {
			out += ","
		}
		out += t.Name
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedcheck:", err)
	os.Exit(1)
}
