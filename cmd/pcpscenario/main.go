// Command pcpscenario runs a declarative scenario spec (internal/scenario)
// against one or both backends and emits the shared per-phase SLO report.
//
// The sim backend compiles each phase into one-shot instances for the
// simulator kernel and sweeps every requested protocol over the seed
// sweep; the live backend drives a pcpdad service through the pipelined
// open-loop client. With -backend live (or both) and no -addr, the driver
// self-hosts an in-process server over the spec's own base workload, so
// one invocation compares nine simulated protocols against the real
// service under the same trace.
//
//	pcpscenario -f scenarios/hotspot-shift.json
//	pcpscenario -f scenarios/overload-ramp.json -backend both -j 4 -o report.json
//	pcpscenario -f scenarios/read-surge.json -backend live -addr 127.0.0.1:9723
//
// Exit code 0 on success, 1 when a backend fails, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pcpda/internal/rtm"
	"pcpda/internal/scenario"
	"pcpda/internal/server"
	"pcpda/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specPath  = flag.String("f", "", "scenario spec file (JSON, see scenarios/)")
		backend   = flag.String("backend", "sim", "backend to run: sim | live | both")
		addr      = flag.String("addr", "", "live pcpdad address (empty with a live backend = self-host in-process)")
		workers   = flag.Int("j", 1, "sim worker goroutines (any value yields byte-identical reports)")
		protoCSV  = flag.String("protocols", "", "comma-separated sim protocol override (empty = spec, then all)")
		seed      = flag.Int64("seed", 0, "override the spec seed (0 = keep)")
		seeds     = flag.Int("seeds", 0, "override the sim sweep width (0 = keep)")
		outPath   = flag.String("o", "", "write the combined JSON report document here")
		quiet     = flag.Bool("q", false, "suppress the human-readable tables")
		skipCheck = flag.Bool("skip-schema-check", false, "drive a live server whose schema does not match the spec workload")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "pcpscenario: -f <spec.json> is required")
		flag.Usage()
		return 2
	}
	runSim, runLive := false, false
	switch *backend {
	case "sim":
		runSim = true
	case "live":
		runLive = true
	case "both":
		runSim, runLive = true, true
	default:
		fmt.Fprintf(os.Stderr, "pcpscenario: unknown backend %q (want sim | live | both)\n", *backend)
		return 2
	}

	spec, err := scenario.Load(*specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcpscenario: %v\n", err)
		return 2
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *seeds > 0 {
		spec.Seeds = *seeds
	}
	var protocols []string
	if *protoCSV != "" {
		known := make(map[string]bool)
		for _, p := range sim.Protocols() {
			known[p] = true
		}
		for _, p := range strings.Split(*protoCSV, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if !known[p] {
				fmt.Fprintf(os.Stderr, "pcpscenario: unknown protocol %q (have %v)\n", p, sim.Protocols())
				return 2
			}
			protocols = append(protocols, p)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	doc := &scenario.Document{Scenario: spec.Name}
	if runSim {
		rep, err := scenario.RunSim(spec, scenario.SimOptions{Workers: *workers, Protocols: protocols})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpscenario: sim: %v\n", err)
			return 1
		}
		doc.Reports = append(doc.Reports, rep)
		if !*quiet {
			rep.Render(os.Stdout)
		}
	}
	if runLive {
		target := *addr
		var host *selfHost
		if target == "" {
			host, err = startSelfHost(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcpscenario: self-host: %v\n", err)
				return 1
			}
			target = host.addr
			if !*quiet {
				fmt.Printf("pcpscenario: self-hosting %q on %s\n", spec.Name, target)
			}
		}
		rep, err := scenario.RunLive(ctx, spec, scenario.LiveOptions{Addr: target, SkipSchemaCheck: *skipCheck})
		if host != nil {
			host.stop()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpscenario: live: %v\n", err)
			return 1
		}
		doc.Reports = append(doc.Reports, rep)
		if !*quiet {
			rep.Render(os.Stdout)
		}
	}

	if *outPath != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcpscenario: encode: %v\n", err)
			return 1
		}
		out = append(out, '\n')
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pcpscenario: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Printf("pcpscenario: wrote %s\n", *outPath)
		}
	}
	return 0
}

// selfHost is an in-process pcpdad equivalent serving the spec's own base
// workload — the live backend's default target, so sim-vs-live runs never
// depend on an externally started daemon.
type selfHost struct {
	addr string
	stop func()
}

func startSelfHost(spec *scenario.Spec) (*selfHost, error) {
	set, err := spec.BaseSet()
	if err != nil {
		return nil, err
	}
	// Firm deadlines to mirror the sim backend, which always simulates
	// under FirmAbort; the seed ties manager-side randomness to the spec.
	mgr, err := rtm.NewWithOptions(set, rtm.Options{FirmDeadlines: true, Seed: spec.Seed})
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{Manager: mgr, Logf: log.Printf})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	h := &selfHost{addr: ln.Addr().String()}
	h.stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("pcpscenario: self-host drain: %v", err)
		}
		if err := <-serveDone; err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("pcpscenario: self-host serve: %v", err)
		}
	}
	return h, nil
}
