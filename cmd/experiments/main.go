// Command experiments regenerates every table and figure of the paper's
// evaluation plus the extension experiments (see DESIGN.md §2 for the
// index). With no arguments it runs everything; pass -run with a
// comma-separated list to select specific experiments, -list to enumerate.
//
//	experiments -list
//	experiments -run fig3,fig4
//	experiments -j 8 > experiments.out
//
// -j N fans the seeded sweeps across N workers; the report is byte-identical
// for every N (runs share nothing, results merge in seed order). -maxticks T
// caps each sweep simulation's horizon — a CI smoke knob that trades
// statistical fidelity for wall clock; do not use it when reproducing the
// paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pcpda/internal/experiments"
	"pcpda/internal/rt"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "", "comma-separated experiment names (default: all)")
	svgdir := flag.String("svgdir", "", "also write the reproduced figures as SVG files into this directory")
	jobs := flag.Int("j", 0, "sweep worker goroutines (0 = GOMAXPROCS); output is identical for any value")
	maxticks := flag.Int64("maxticks", 0, "cap each sweep run's horizon at this many ticks (0 = no cap; changes the numbers — CI smoke only)")
	flag.Parse()
	experiments.SetWorkers(*jobs)
	experiments.SetHorizonCap(rt.Ticks(*maxticks))
	if *svgdir != "" {
		if err := os.MkdirAll(*svgdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiments.SetFigureDir(*svgdir)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Title)
		}
		return
	}
	if *run == "" {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range strings.Split(*run, ",") {
		name = strings.TrimSpace(name)
		e, ok := experiments.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", name)
			os.Exit(1)
		}
		if err := experiments.RunOne(os.Stdout, e); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
