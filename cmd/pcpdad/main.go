// Command pcpdad serves a PCP-DA transaction manager over TCP.
//
// It generates a seeded synthetic transaction set, builds a live
// rtm.Manager over it (optionally with firm deadlines and fault
// injection), and runs the internal/server protocol on -listen. A side
// HTTP listener on -http exposes:
//
//	/healthz  liveness: 200 "ok", 200 "degraded" (serving but shedding),
//	          503 "draining"
//	/stats    JSON snapshot: server counters + per-shard admission
//	          stats (depth, stolen, EWMA wait) + manager counters
//
// SIGINT/SIGTERM trigger a graceful drain bounded by -drain-timeout. The
// exit code is the drain verdict: 0 means the manager shut down provably
// clean (invariants hold, zero live transactions, zero parked waiters);
// 1 means the drain audit failed; 2 means startup failed.
//
//	pcpdad -listen :9723 -http :9724 -n 8 -items 12 -seed 1
//	pcpdad -listen :9723 -fault-abort 0.01 -firm-deadlines
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pcpda/internal/fault"
	"pcpda/internal/metrics"
	"pcpda/internal/rtm"
	"pcpda/internal/server"
	"pcpda/internal/wire"
	"pcpda/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen       = flag.String("listen", "127.0.0.1:9723", "transaction service listen address")
		httpAddr     = flag.String("http", "", "stats/health HTTP listen address (empty = disabled)")
		queueDepth   = flag.Int("queue", 64, "admission queue depth (full queue => overload rejection)")
		highWater    = flag.Int("high-water", 0, "queue occupancy at which priority shedding starts (0 = 3/4 of -queue)")
		batchMax     = flag.Int("batch", 16, "max BEGINs folded into one admission batch")
		admitting    = flag.Int("admitting", 4, "max concurrently running admission batches")
		shards       = flag.Int("shards", 0, "admission shards with work stealing (0 = scale with GOMAXPROCS)")
		inflight     = flag.Int("inflight", 0, "max unflushed responses per pipelined session (0 = default)")
		maxConns     = flag.Int("max-conns", 0, "max concurrent sessions; excess connections are refused at accept with a retryable busy error (0 = unlimited)")
		wireV2       = flag.Bool("wire-v2", false, "pin the wire protocol to v2: refuse tagged frames, force strict clients")
		idleTimeout  = flag.Duration("idle-timeout", 30*time.Second, "per-session read deadline")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "per-frame write deadline (slow-client kill threshold)")
		wdInterval   = flag.Duration("watchdog-interval", 100*time.Millisecond, "stuck-transaction watchdog sweep interval (negative = disabled)")
		wdGrace      = flag.Duration("watchdog-grace", time.Second, "how far past its firm deadline a transaction may live before force-abort")
		stuckAge     = flag.Duration("stuck-age", 0, "force-abort any transaction older than this, deadline or not (0 = disabled)")
		healthWindow = flag.Duration("health-window", 5*time.Second, "how long after the last overload event /healthz stays degraded")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight transactions on shutdown")

		n         = flag.Int("n", 8, "transaction templates in the generated set")
		items     = flag.Int("items", 12, "shared data items")
		util      = flag.Float64("util", 0.5, "target utilization of the generated set")
		writeProb = flag.Float64("write-prob", 0.5, "probability an operation is a write")
		seed      = flag.Int64("seed", 1, "workload generation seed")

		firm        = flag.Bool("firm-deadlines", false, "abort transactions that miss their firm deadline")
		faultSeed   = flag.Int64("fault-seed", 42, "fault injector seed")
		faultDelay  = flag.Float64("fault-delay", 0, "probability of an injected scheduling delay")
		faultWakeup = flag.Float64("fault-wakeup", 0, "probability of an injected spurious wakeup")
		faultAbort  = flag.Float64("fault-abort", 0, "probability of an injected forced abort")
		faultCancel = flag.Float64("fault-cancel", 0, "probability of an injected forced cancel")
	)
	flag.Parse()

	set, err := workload.Generate(workload.Config{
		N: *n, Items: *items, Utilization: *util,
		PeriodMin: 40, PeriodMax: 400,
		OpsMin: 2, OpsMax: 4, WriteProb: *writeProb, Seed: *seed,
	})
	if err != nil {
		log.Printf("pcpdad: workload: %v", err)
		return 2
	}
	opts := rtm.Options{FirmDeadlines: *firm, Seed: *seed}
	if *faultDelay > 0 || *faultWakeup > 0 || *faultAbort > 0 || *faultCancel > 0 {
		opts.Injector = fault.NewSeeded(fault.Config{
			Seed: *faultSeed, PDelay: *faultDelay, PWakeup: *faultWakeup,
			PAbort: *faultAbort, PCancel: *faultCancel,
		})
	}
	mgr, err := rtm.NewWithOptions(set, opts)
	if err != nil {
		log.Printf("pcpdad: manager: %v", err)
		return 2
	}
	maxWire := wire.Version
	if *wireV2 {
		maxWire = wire.V2
	}
	ctr := &metrics.ServerCounters{}
	srv, err := server.New(server.Config{
		Manager: mgr, Counters: ctr,
		QueueDepth: *queueDepth, HighWater: *highWater,
		BatchMax: *batchMax, MaxAdmitting: *admitting,
		AdmitShards: *shards, SessionInflight: *inflight,
		MaxConns:       *maxConns,
		MaxWireVersion: maxWire,
		IdleTimeout:    *idleTimeout, WriteTimeout: *writeTimeout,
		WatchdogInterval: *wdInterval, WatchdogGrace: *wdGrace,
		StuckTxnAge: *stuckAge, HealthWindow: *healthWindow,
		Logf: log.Printf,
	})
	if err != nil {
		log.Printf("pcpdad: %v", err)
		return 2
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Printf("pcpdad: listen: %v", err)
		return 2
	}
	log.Printf("pcpdad: serving set %q (%d templates, %d items) on %s",
		set.Name, len(set.Templates), *items, ln.Addr())

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = statsServer(*httpAddr, srv, mgr, ctr)
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("pcpdad: %s: draining (grace %v)", sig, *drainTimeout)
	case err := <-serveDone:
		log.Printf("pcpdad: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := <-serveDone; err != nil && !errors.Is(err, net.ErrClosed) {
		log.Printf("pcpdad: serve exit: %v", err)
	}
	if httpSrv != nil {
		_ = httpSrv.Close()
	}
	snap := ctr.Snapshot()
	log.Printf("pcpdad: accepted=%d rejected_overload=%d rejected_infeasible=%d shed=%d auto_aborted=%d drain_aborted=%d",
		snap.Accepted, snap.RejectedOverload, snap.RejectedInfeasible, snap.Shed, snap.AutoAborted, snap.DrainAborted)
	log.Printf("pcpdad: watchdog_trips=%d watchdog_audit_fails=%d slow_client_kills=%d bytes_in=%d bytes_out=%d",
		snap.WatchdogTrips, snap.WatchdogAuditFails, snap.SlowClientKills, snap.BytesIn, snap.BytesOut)
	if drainErr != nil {
		log.Printf("pcpdad: drain audit FAILED: %v", drainErr)
		return 1
	}
	log.Printf("pcpdad: drain clean")
	return 0
}

// statsServer exposes /healthz and /stats on addr.
func statsServer(addr string, srv *server.Server, mgr *rtm.Manager, ctr *metrics.ServerCounters) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		state := srv.Health()
		// "degraded" still serves traffic — it is a warning, not a failure —
		// so only "draining" turns the probe red.
		if state == "draining" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_, _ = fmt.Fprintln(w, state)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		doc := struct {
			Health  string                 `json:"health"`
			Server  metrics.ServerSnapshot `json:"server"`
			Shards  []server.ShardStat     `json:"shards"`
			Manager rtm.Stats              `json:"manager"`
		}{srv.Health(), ctr.Snapshot(), srv.ShardStats(), mgr.Stats()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	s := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := s.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pcpdad: stats http: %v", err)
		}
	}()
	return s
}
