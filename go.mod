module pcpda

go 1.22
