package pcpda_test

import (
	"strings"
	"testing"

	"pcpda"
)

// buildDemo constructs the quickstart workload through the public API only.
func buildDemo(t *testing.T) *pcpda.Set {
	t.Helper()
	set := pcpda.NewSet("demo")
	x := set.Catalog.Intern("x")
	y := set.Catalog.Intern("y")
	set.Add(&pcpda.Template{
		Name: "reader", Period: 5, Offset: 1,
		Steps: []pcpda.Step{pcpda.Read(x), pcpda.Read(y)},
	})
	set.Add(&pcpda.Template{
		Name:  "updater",
		Steps: []pcpda.Step{pcpda.Write(x), pcpda.Comp(2), pcpda.Write(y), pcpda.Comp(1)},
	})
	set.AssignByIndex()
	return set
}

func TestPublicRunAndSummary(t *testing.T) {
	set := buildDemo(t)
	res, err := pcpda.Run(set, "pcpda", pcpda.Options{Horizon: 10, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := pcpda.Summarize(res)
	if !sum.Serializable || sum.Misses != 0 || sum.TotalBlocked != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if !strings.Contains(res.Timeline.Render(set), "reader") {
		t.Fatal("timeline missing row label")
	}
	per := pcpda.PerTxn(res)
	if len(per) != 2 || per[0].Name != "reader" {
		t.Fatalf("per-txn = %+v", per)
	}
	if tbl := pcpda.SummaryTable([]pcpda.Summary{sum}); !strings.Contains(tbl, "PCP-DA") {
		t.Fatalf("table = %q", tbl)
	}
}

func TestPublicCompareShowsContrast(t *testing.T) {
	set := buildDemo(t)
	comps, err := pcpda.Compare(set, []string{"pcpda", "rwpcp"}, pcpda.Options{Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Summary.Misses != 0 {
		t.Fatal("PCP-DA must meet the reader's deadlines")
	}
	if comps[1].Summary.Misses == 0 {
		t.Fatal("RW-PCP must miss on this phasing (the Example 3 effect)")
	}
}

func TestPublicProtocolRegistry(t *testing.T) {
	names := pcpda.Protocols()
	if len(names) != 9 {
		t.Fatalf("protocols = %v", names)
	}
	p, err := pcpda.NewProtocol("pcpda")
	if err != nil || p.Name() != "PCP-DA" || !p.Deferred() {
		t.Fatalf("NewProtocol: %v %v", p, err)
	}
	set := buildDemo(t)
	res, err := pcpda.RunProtocol(set, p, pcpda.Options{Horizon: 10})
	if err != nil || res.Committed == 0 {
		t.Fatalf("RunProtocol: %v", err)
	}
}

func TestPublicAnalysis(t *testing.T) {
	set := pcpda.NewSet("an")
	x := set.Catalog.Intern("x")
	y := set.Catalog.Intern("y")
	set.Add(&pcpda.Template{Name: "T1", Period: 10, Steps: []pcpda.Step{pcpda.Read(x), pcpda.Comp(1)}})
	set.Add(&pcpda.Template{Name: "T2", Period: 40, Steps: []pcpda.Step{pcpda.Write(x), pcpda.Read(y), pcpda.Comp(2)}})
	set.AssignRateMonotonic()

	ceil := pcpda.ComputeCeilings(set)
	t1 := set.ByName("T1")
	if b := pcpda.WorstCaseBlocking(set, ceil, pcpda.AnalysisPCPDA, t1); b != 0 {
		t.Fatalf("B(PCP-DA) = %d", b)
	}
	if b := pcpda.WorstCaseBlocking(set, ceil, pcpda.AnalysisRWPCP, t1); b != 4 {
		t.Fatalf("B(RW-PCP) = %d", b)
	}
	if bts := pcpda.BlockingSet(set, ceil, pcpda.AnalysisRWPCP, t1); len(bts) != 1 {
		t.Fatalf("BTS = %v", bts)
	}
	rm, err := pcpda.RMTest(set, pcpda.AnalysisPCPDA)
	if err != nil || !rm.Schedulable {
		t.Fatalf("RMTest: %v %+v", err, rm)
	}
	rta, err := pcpda.ResponseTimeTest(set, pcpda.AnalysisRWPCP)
	if err != nil || !rta.Schedulable {
		t.Fatalf("ResponseTimeTest: %v %+v", err, rta)
	}
}

func TestPublicWorkloadRoundTrip(t *testing.T) {
	set, err := pcpda.Generate(pcpda.WorkloadConfig{
		N: 5, Items: 6, Utilization: 0.5,
		PeriodMin: 20, PeriodMax: 200,
		OpsMin: 1, OpsMax: 3, WriteProb: 0.4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := pcpda.MarshalWorkload(set)
	if err != nil {
		t.Fatal(err)
	}
	back, err := pcpda.UnmarshalWorkload(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Templates) != 5 {
		t.Fatalf("round trip lost templates: %d", len(back.Templates))
	}
	if h := pcpda.DefaultHorizon(back); h <= 0 {
		t.Fatalf("horizon = %d", h)
	}
}

func TestPublicHistoryCheck(t *testing.T) {
	set := buildDemo(t)
	res, err := pcpda.Run(set, "pcpda", pcpda.Options{Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.History.Check()
	if !rep.Serializable || !rep.CommitOrderOK {
		t.Fatalf("report = %+v", rep)
	}
}
