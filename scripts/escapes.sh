#!/bin/sh
# escapes.sh — cross-check for the allocfree analyzer (DESIGN.md §10).
#
# The //pcpda:alloc-free annotation is enforced syntactically by pcpdalint;
# this script asks the compiler's escape analysis for ground truth. It
# rebuilds the hot-path packages with -gcflags=-m, normalizes the
# "escapes to heap" / "moved to heap" diagnostics (line:col stripped, so
# unrelated edits that shift lines don't churn the baseline; a genuinely
# new allocation site is a new message) and diffs the unique set against
# the committed baseline.
#
#   scripts/escapes.sh            # compare against scripts/escapes.baseline
#   scripts/escapes.sh -update    # rewrite the baseline (review the diff!)
#
# Escape analysis output is compiler-version dependent: the baseline
# records the Go version it was made with, and when the running toolchain
# differs the diff is shown as a warning but does not fail — the check is
# strict only under the baseline's own Go version. Rebaseline with -update
# after a toolchain bump.
set -eu

cd "$(dirname "$0")/.."
BASELINE=scripts/escapes.baseline
PKGS="./internal/lock ./internal/sched ./internal/rtm ./internal/wire ./internal/db ./internal/server ./internal/client"
GOVER=$(go env GOVERSION)

snapshot() {
	# -a defeats the build cache (cached packages print no diagnostics).
	go build -a -gcflags=-m $PKGS 2>&1 |
		grep -E "moved to heap|escapes to heap" |
		sed -E 's/^([^:]+):[0-9]+:[0-9]+:/\1:/' |
		LC_ALL=C sort -u
}

if [ "${1:-}" = "-update" ]; then
	{
		echo "# go: $GOVER"
		snapshot
	} >"$BASELINE"
	echo "escapes.sh: baseline rewritten for $GOVER ($(grep -c . "$BASELINE") lines)"
	exit 0
fi

[ -f "$BASELINE" ] || { echo "escapes.sh: missing $BASELINE (run scripts/escapes.sh -update)" >&2; exit 1; }
BASEVER=$(sed -n 's/^# go: //p' "$BASELINE")

TMP=$(mktemp)
BASE=$(mktemp)
trap 'rm -f "$TMP" "$BASE"' EXIT
snapshot >"$TMP"
grep -v '^#' "$BASELINE" >"$BASE"

if diff -u "$BASE" "$TMP"; then
	echo "escapes.sh: escape-analysis output matches baseline ($BASEVER)"
	exit 0
fi

if [ "$GOVER" != "$BASEVER" ]; then
	echo "escapes.sh: WARNING: diff above is against a $BASEVER baseline under $GOVER; not failing (rebaseline with -update)" >&2
	exit 0
fi
echo "escapes.sh: escape-analysis output changed — new allocation sites in hot-path packages? (rebaseline with -update if intended)" >&2
exit 1
