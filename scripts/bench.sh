#!/usr/bin/env bash
# bench.sh — run the benchmark suite and emit a committed performance record
# (BENCH_<n>.json) plus a benchstat-compatible text log. Covers the live
# manager and lock table (multi-core), and the simulator kernel + sweep
# engine (per-run cost, index-vs-scan pairs, sweep wall clock).
#
# Usage:
#   scripts/bench.sh                         # writes BENCH_3.json + bench.txt
#   BENCH_LABEL=baseline BENCH_OUT=/tmp/base.json scripts/bench.sh
#   BENCH_BASELINE=/tmp/base.json scripts/bench.sh   # embeds baseline + deltas
#
# Environment knobs:
#   BENCH_OUT      output JSON path            (default BENCH_3.json)
#   BENCH_TXT      output text log path        (default bench.txt)
#   BENCH_LABEL    label recorded in the JSON  (default current)
#   BENCH_BASELINE previously emitted JSON to diff against (default none)
#   BENCH_NOTE     free-text note recorded in the JSON (default none)
#   BENCH_CPU      -cpu list for the manager/lock benches (default 1,2,4,8)
#   BENCH_TIME     -benchtime for the micro benches (default 1s)
#   BENCH_COUNT    -count (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_3.json}
txt=${BENCH_TXT:-bench.txt}
label=${BENCH_LABEL:-current}
baseline=${BENCH_BASELINE:-}
note=${BENCH_NOTE:-}
cpu=${BENCH_CPU:-1,2,4,8}
benchtime=${BENCH_TIME:-1s}
count=${BENCH_COUNT:-1}

go build ./...

# Live manager + lock table (scales with cores).
go test -run '^$' -bench 'BenchmarkManager|BenchmarkLock' -benchmem \
	-cpu "$cpu" -benchtime "$benchtime" -count "$count" \
	./internal/rtm ./internal/lock | tee "$txt"

# Simulator kernel: per-run protocol cost and the index-vs-scan pairs.
go test -run '^$' \
	-bench 'BenchmarkSimulationTicks|BenchmarkRunPCPDA|BenchmarkRunRWPCP|BenchmarkRunCCP|BenchmarkRunOPCP|BenchmarkRun2PLHP|BenchmarkScan|BenchmarkCompareAllProtocols' \
	-benchmem -benchtime "$benchtime" -count "$count" \
	. | tee -a "$txt"

# Sweep engine wall clock (one full regeneration per sweep experiment).
go test -run '^$' \
	-bench 'BenchmarkMissRatio|BenchmarkBlockingProfile|BenchmarkRestarts|BenchmarkAblation|BenchmarkCSLength|BenchmarkHotspot' \
	-benchmem -benchtime 1x -count "$count" \
	. | tee -a "$txt"

args=(-label "$label")
if [[ -n "$baseline" ]]; then
	args+=(-baseline "$baseline")
fi
if [[ -n "$note" ]]; then
	args+=(-note "$note")
fi
go run ./cmd/benchjson "${args[@]}" < "$txt" > "$out"
echo "wrote $out (text log: $txt)"
