#!/usr/bin/env bash
# bench.sh — run the live-manager and lock-table benchmark suite and emit a
# committed performance record (BENCH_<n>.json) plus a benchstat-compatible
# text log.
#
# Usage:
#   scripts/bench.sh                         # writes BENCH_2.json + bench.txt
#   BENCH_LABEL=baseline BENCH_OUT=/tmp/base.json scripts/bench.sh
#   BENCH_BASELINE=/tmp/base.json scripts/bench.sh   # embeds baseline + deltas
#
# Environment knobs:
#   BENCH_OUT      output JSON path            (default BENCH_2.json)
#   BENCH_TXT      output text log path        (default bench.txt)
#   BENCH_LABEL    label recorded in the JSON  (default current)
#   BENCH_BASELINE previously emitted JSON to diff against (default none)
#   BENCH_CPU      -cpu list                   (default 1,2,4,8)
#   BENCH_TIME     -benchtime                  (default 1s)
#   BENCH_COUNT    -count                      (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_2.json}
txt=${BENCH_TXT:-bench.txt}
label=${BENCH_LABEL:-current}
baseline=${BENCH_BASELINE:-}
cpu=${BENCH_CPU:-1,2,4,8}
benchtime=${BENCH_TIME:-1s}
count=${BENCH_COUNT:-1}

go build ./...

go test -run '^$' -bench 'BenchmarkManager|BenchmarkLock' -benchmem \
	-cpu "$cpu" -benchtime "$benchtime" -count "$count" \
	./internal/rtm ./internal/lock | tee "$txt"

args=(-label "$label")
if [[ -n "$baseline" ]]; then
	args+=(-baseline "$baseline")
fi
go run ./cmd/benchjson "${args[@]}" < "$txt" > "$out"
echo "wrote $out (text log: $txt)"
