#!/usr/bin/env bash
# loadbench.sh — end-to-end load benchmark of the network transaction
# service: start pcpdad on a loopback port, drive it with pcpdaload, shut
# the daemon down with SIGTERM and require a clean drain audit (exit 0).
#
# Two modes:
#
#   Closed loop (default): drive LOAD_TXNS transactions and convert the
#   driver's benchmark line into a committed performance record via
#   cmd/benchjson (the BENCH_5 pipeline).
#
#   Overload sweep (LOAD_SWEEP set, e.g. "1,2,3,4"): measure the
#   closed-loop saturation rate, then run one open-loop Poisson step per
#   multiplier of it with a firm deadline budget, and write pcpdaload's
#   sweep document (goodput, deadline-miss ratio, shed counts per step)
#   to LOAD_OUT — the BENCH_6 overload artifact. The sweep requires the
#   server to actually shed: the run fails if no step recorded a shed or
#   infeasible rejection. LOAD_NEMESIS=1 routes the sweep through the
#   in-process fault-injection proxy.
#
# LOAD_PIPELINE=1 switches the driver to the tagged wire client. In the
# sweep this runs paired strict and pipelined rows per multiplier and
# records both saturation rates plus their ratio — the BENCH_7 artifact.
#
# LOAD_READMIX (requires LOAD_PIPELINE=1) declares that fraction of
# transactions read-only: they run on the lock-free multiversion snapshot
# path. The sweep then adds a mixed row per multiplier plus the zero-
# traffic proof (manager clock / lock table deltas over a read-only
# burst, fetched from pcpdad's stats endpoint) — the BENCH_8 artifact.
#
# Usage:
#   scripts/loadbench.sh                                # BENCH_5-style closed loop
#   LOAD_SWEEP=1,2,3,4 LOAD_OUT=BENCH_6.json scripts/loadbench.sh
#   LOAD_PIPELINE=1 LOAD_SWEEP=1,2,3,4 LOAD_OUT=BENCH_7.json scripts/loadbench.sh
#   LOAD_PIPELINE=1 LOAD_READMIX=0.9 LOAD_SWEEP=1,2,3 LOAD_OUT=BENCH_8.json scripts/loadbench.sh
#   LOAD_RACE=1 LOAD_SWEEP=1,2 LOAD_NEMESIS=1 scripts/loadbench.sh   # CI overload smoke
#
# Environment knobs:
#   LOAD_OUT      output JSON path            (default BENCH_5.json)
#   LOAD_TXT      output text log path        (default loadbench.txt)
#   LOAD_LABEL    label recorded in the JSON  (default current)
#   LOAD_CONNS    concurrent connections      (default 64)
#   LOAD_TXNS     committed transactions      (default 10000; sweep: calibration burst)
#   LOAD_SEED     workload seed               (default 7)
#   LOAD_ADDR     listen address              (default 127.0.0.1:9723)
#   LOAD_RACE     1 = build both binaries with -race (slower, CI smoke)
#   LOAD_FAULTS   1 = run the daemon with rtm fault injection on
#                 (default 1 closed loop, 0 sweep — injected rtm delays
#                 make the saturation calibration too noisy to step from)
#   LOAD_QUEUE    admission queue depth       (default 128; sweep default
#                 LOAD_CONNS — deep enough never to blanket-reject, since a
#                 session has at most one BEGIN outstanding)
#   LOAD_HW       shedding high-water mark    (sweep default LOAD_CONNS/4;
#                 0 elsewhere = server default of 3/4 queue depth)
#   LOAD_SWEEP    saturation multipliers, comma-separated (empty = closed loop)
#   LOAD_DEADLINE firm deadline per txn in the sweep (default 150ms)
#   LOAD_DURATION open-loop window per sweep step (default 4s)
#   LOAD_NEMESIS  1 = route the sweep through the nemesis fault proxy
#   LOAD_PIPELINE 1 = use the pipelined wire-v3 client (sweep: paired
#                 strict + pipelined rows per multiplier)
#   LOAD_WINDOW   pipelined in-flight window per connection (default 48)
#   LOAD_READMIX  fraction of transactions declared read-only (default 0;
#                 requires LOAD_PIPELINE=1; also starts pcpdad's stats
#                 endpoint and records the zero-lock-traffic proof)
#   LOAD_MAXCONNS pcpdad -max-conns session cap (default 0 = unlimited)
#   LOAD_HTTP     pcpdad stats/health listen address
#                 (default 127.0.0.1:9724 when LOAD_READMIX > 0)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${LOAD_OUT:-BENCH_5.json}
txt=${LOAD_TXT:-loadbench.txt}
label=${LOAD_LABEL:-current}
conns=${LOAD_CONNS:-64}
txns=${LOAD_TXNS:-10000}
seed=${LOAD_SEED:-7}
addr=${LOAD_ADDR:-127.0.0.1:9723}
race=${LOAD_RACE:-0}
sweep=${LOAD_SWEEP:-}
# rtm fault injection adds run-to-run noise that swamps the saturation
# calibration, so the sweep defaults it off — the sweep measures the
# overload path, and network faults come from LOAD_NEMESIS instead.
if [[ -n "$sweep" ]]; then
	faults=${LOAD_FAULTS:-0}
else
	faults=${LOAD_FAULTS:-1}
fi
deadline=${LOAD_DEADLINE:-150ms}
duration=${LOAD_DURATION:-4s}
nemesis=${LOAD_NEMESIS:-0}
pipeline=${LOAD_PIPELINE:-0}
window=${LOAD_WINDOW:-48}
readmix=${LOAD_READMIX:-0}
maxconns=${LOAD_MAXCONNS:-0}
if [[ "$readmix" != 0 && "$pipeline" != 1 ]]; then
	echo "loadbench: LOAD_READMIX requires LOAD_PIPELINE=1 (read-only txns ride the tagged wire protocol)" >&2
	exit 1
fi
# The read mix needs pcpdad's stats endpoint for the zero-traffic proof.
if [[ "$readmix" != 0 ]]; then
	http=${LOAD_HTTP:-127.0.0.1:9724}
else
	http=${LOAD_HTTP:-}
fi
# Sweep queue sizing: a session has at most one BEGIN outstanding, so
# queue occupancy is bounded by LOAD_CONNS. Depth == conns means the
# queue itself never fills (no blanket overload rejections that would
# starve even top-priority work), while the low high-water mark (a
# quarter of conns) engages priority shedding early — overload is
# resolved by shedding the least important work, which is the protocol
# under test.
if [[ -n "$sweep" ]]; then
	queue=${LOAD_QUEUE:-$conns}
	hw=${LOAD_HW:-$((conns / 4))}
else
	queue=${LOAD_QUEUE:-128}
	hw=${LOAD_HW:-0}
fi

build=(go build)
if [[ "$race" == 1 ]]; then
	build+=(-race)
fi
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
"${build[@]}" -o "$tmp/pcpdad" ./cmd/pcpdad
"${build[@]}" -o "$tmp/pcpdaload" ./cmd/pcpdaload

daemon_args=(-listen "$addr" -queue "$queue" -high-water "$hw")
if [[ "$faults" == 1 ]]; then
	daemon_args+=(-fault-abort 0.002 -fault-delay 0.01 -fault-wakeup 0.01)
fi
if [[ -n "$http" ]]; then
	daemon_args+=(-http "$http")
fi
if [[ "$maxconns" != 0 ]]; then
	daemon_args+=(-max-conns "$maxconns")
fi
"$tmp/pcpdad" "${daemon_args[@]}" > "$tmp/pcpdad.log" 2>&1 &
daemon=$!

# Wait for the listener to come up.
for _ in $(seq 1 100); do
	if "$tmp/pcpdaload" -addr "$addr" -conns 1 -txns 1 -seed 0 >/dev/null 2>&1; then
		break
	fi
	sleep 0.1
done

if [[ -n "$sweep" ]]; then
	# -op-timeout 2s: a nemesis-partitioned connection stalls its worker
	# only until the op deadline, not the default 10s.
	load_args=(-addr "$addr" -conns "$conns" -txns "$txns" -seed "$seed"
		-op-timeout 2s
		-sweep "$sweep" -deadline-budget "$deadline" -duration "$duration"
		-label "$label" -report "$out")
	if [[ "$nemesis" == 1 ]]; then
		load_args+=(-nemesis)
	fi
	if [[ "$pipeline" == 1 ]]; then
		load_args+=(-pipeline -window "$window")
	fi
	if [[ "$readmix" != 0 ]]; then
		load_args+=(-read-frac "$readmix" -stats "http://$http")
	fi
	"$tmp/pcpdaload" "${load_args[@]}" 2>&1 | tee "$txt"
else
	closed_args=(-addr "$addr" -conns "$conns" -txns "$txns" -seed "$seed"
		-bench -report "$tmp/report.json")
	if [[ "$pipeline" == 1 ]]; then
		closed_args+=(-pipeline -window "$window")
	fi
	if [[ "$readmix" != 0 ]]; then
		closed_args+=(-read-frac "$readmix" -stats "http://$http")
	fi
	"$tmp/pcpdaload" "${closed_args[@]}" | tee "$txt"
fi

# Graceful drain: the daemon's exit code is the leak audit.
kill -TERM "$daemon"
drain=0
wait "$daemon" || drain=$?
cat "$tmp/pcpdad.log"
if [[ "$drain" != 0 ]]; then
	echo "loadbench: pcpdad drain audit failed (exit $drain)" >&2
	exit 1
fi

if [[ -n "$sweep" ]]; then
	# Overload protection must have actually engaged somewhere in the
	# sweep, or the artifact proves nothing about degradation.
	shed=$(grep -Eo '"(shed|infeasible)": [0-9]+' "$out" | awk '{s+=$2} END {print s+0}')
	if [[ "$shed" == 0 ]]; then
		echo "loadbench: sweep recorded zero shed/infeasible rejections" >&2
		exit 1
	fi
	echo "wrote $out (sweep; $shed shed/infeasible rejections; text log: $txt)"
else
	grep '^Benchmark' "$txt" | go run ./cmd/benchjson -label "$label" \
		-note "pcpdad loopback: $conns conns, $txns txns, faults=$faults race=$race pipeline=$pipeline readmix=$readmix" > "$out"
	echo "wrote $out (text log: $txt)"
fi
