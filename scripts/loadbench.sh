#!/usr/bin/env bash
# loadbench.sh — end-to-end load benchmark of the network transaction
# service: start pcpdad on a loopback port, drive it with pcpdaload, shut
# the daemon down with SIGTERM and require a clean drain audit (exit 0),
# then convert the load driver's benchmark line into a committed
# performance record via cmd/benchjson.
#
# Usage:
#   scripts/loadbench.sh                      # writes BENCH_5.json + loadbench.txt
#   LOAD_RACE=1 scripts/loadbench.sh          # daemon built with -race (CI smoke)
#
# Environment knobs:
#   LOAD_OUT     output JSON path             (default BENCH_5.json)
#   LOAD_TXT     output text log path         (default loadbench.txt)
#   LOAD_LABEL   label recorded in the JSON   (default current)
#   LOAD_CONNS   concurrent connections       (default 64)
#   LOAD_TXNS    committed transactions       (default 10000)
#   LOAD_SEED    workload seed                (default 7)
#   LOAD_ADDR    listen address               (default 127.0.0.1:9723)
#   LOAD_RACE    1 = build both binaries with -race (slower, CI smoke)
#   LOAD_FAULTS  1 = run the daemon with fault injection on (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${LOAD_OUT:-BENCH_5.json}
txt=${LOAD_TXT:-loadbench.txt}
label=${LOAD_LABEL:-current}
conns=${LOAD_CONNS:-64}
txns=${LOAD_TXNS:-10000}
seed=${LOAD_SEED:-7}
addr=${LOAD_ADDR:-127.0.0.1:9723}
race=${LOAD_RACE:-0}
faults=${LOAD_FAULTS:-1}

build=(go build)
if [[ "$race" == 1 ]]; then
	build+=(-race)
fi
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
"${build[@]}" -o "$tmp/pcpdad" ./cmd/pcpdad
"${build[@]}" -o "$tmp/pcpdaload" ./cmd/pcpdaload

daemon_args=(-listen "$addr" -queue 128)
if [[ "$faults" == 1 ]]; then
	daemon_args+=(-fault-abort 0.002 -fault-delay 0.01 -fault-wakeup 0.01)
fi
"$tmp/pcpdad" "${daemon_args[@]}" > "$tmp/pcpdad.log" 2>&1 &
daemon=$!

# Wait for the listener to come up.
for _ in $(seq 1 100); do
	if "$tmp/pcpdaload" -addr "$addr" -conns 1 -txns 1 -seed 0 >/dev/null 2>&1; then
		break
	fi
	sleep 0.1
done

"$tmp/pcpdaload" -addr "$addr" -conns "$conns" -txns "$txns" -seed "$seed" \
	-bench -report "$tmp/report.json" | tee "$txt"

# Graceful drain: the daemon's exit code is the leak audit.
kill -TERM "$daemon"
drain=0
wait "$daemon" || drain=$?
cat "$tmp/pcpdad.log"
if [[ "$drain" != 0 ]]; then
	echo "loadbench: pcpdad drain audit failed (exit $drain)" >&2
	exit 1
fi

grep '^Benchmark' "$txt" | go run ./cmd/benchjson -label "$label" \
	-note "pcpdad loopback: $conns conns, $txns txns, faults=$faults race=$race" > "$out"
echo "wrote $out (text log: $txt)"
