package pcpda_test

import (
	"context"
	"fmt"
	"time"

	"pcpda"
)

// Example runs the paper's Example 3 under PCP-DA and under RW-PCP and
// shows the contrast the paper's Figures 2 and 3 plot: RW-PCP blocks the
// high-priority reader behind the updater's ceilings and misses a deadline;
// PCP-DA reads straight through the write locks and misses nothing.
func Example() {
	set := pcpda.NewSet("example3")
	x := set.Catalog.Intern("x")
	y := set.Catalog.Intern("y")
	set.Add(&pcpda.Template{Name: "T1", Offset: 1, Period: 5,
		Steps: []pcpda.Step{pcpda.Read(x), pcpda.Read(y)}})
	set.Add(&pcpda.Template{Name: "T2",
		Steps: []pcpda.Step{pcpda.Write(x), pcpda.Comp(2), pcpda.Write(y), pcpda.Comp(1)}})
	set.AssignByIndex()

	for _, protocol := range []string{"pcpda", "rwpcp"} {
		res, err := pcpda.Run(set, protocol, pcpda.Options{Horizon: 10})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		sum := pcpda.Summarize(res)
		fmt.Printf("%s: misses=%d blocked=%d serializable=%v\n",
			res.Protocol, sum.Misses, sum.TotalBlocked, sum.Serializable)
	}
	// Output:
	// PCP-DA: misses=0 blocked=0 serializable=true
	// RW-PCP: misses=1 blocked=4 serializable=true
}

// ExampleRMTest reproduces the Section 9 effect: a transaction that only
// WRITES a hot item inflates the top transaction's blocking term under
// RW-PCP but not under PCP-DA, flipping the schedulability verdict.
func ExampleRMTest() {
	set := pcpda.NewSet("sec9")
	x := set.Catalog.Intern("x")
	y := set.Catalog.Intern("y")
	set.Add(&pcpda.Template{Name: "T1", Period: 10,
		Steps: []pcpda.Step{pcpda.Read(x), pcpda.Comp(6)}})
	set.Add(&pcpda.Template{Name: "T2", Period: 50,
		Steps: []pcpda.Step{pcpda.Write(x), pcpda.Read(y), pcpda.Comp(4)}})
	set.AssignRateMonotonic()

	for _, kind := range []pcpda.AnalysisKind{pcpda.AnalysisPCPDA, pcpda.AnalysisRWPCP} {
		rep, err := pcpda.RMTest(set, kind)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s: schedulable=%v B(T1)=%d\n", kind, rep.Schedulable, rep.Verdicts[0].B)
	}
	// Output:
	// PCP-DA: schedulable=true B(T1)=0
	// RW-PCP: schedulable=false B(T1)=6
}

// ExampleNewManager uses PCP-DA as a live concurrency-control component:
// a goroutine's transaction reads an item another transaction has
// write-locked, observing the committed value and serializing first.
func ExampleNewManager() {
	set := pcpda.NewSet("live")
	x := set.Catalog.Intern("x")
	set.Add(&pcpda.Template{Name: "reader", Steps: []pcpda.Step{pcpda.Read(x)}})
	set.Add(&pcpda.Template{Name: "writer", Steps: []pcpda.Step{pcpda.Write(x)}})
	set.AssignByIndex()

	mgr, err := pcpda.NewManager(set)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	w, _ := mgr.Begin(ctx, "writer")
	_ = w.Write(ctx, x, 42) // write-locks x, buffers in the workspace

	r, _ := mgr.Begin(ctx, "reader")
	v, _ := r.Read(ctx, x) // granted through the write lock (LC2 + Table 1)
	_ = r.Commit(ctx)
	_ = w.Commit(ctx)

	fmt.Printf("reader saw committed value %d; now x=%d\n", v, mgr.ReadCommitted(x))
	// Output:
	// reader saw committed value 0; now x=42
}

// ExampleGenerate builds a seeded random workload and checks it under
// every protocol's worst-case analysis.
func ExampleGenerate() {
	set, err := pcpda.Generate(pcpda.WorkloadConfig{
		N: 4, Items: 5, Utilization: 0.4,
		PeriodMin: 20, PeriodMax: 200,
		OpsMin: 1, OpsMax: 3, WriteProb: 0.5, Seed: 7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("transactions=%d utilization≈%.1f\n", len(set.Templates), set.Utilization())
	// Output:
	// transactions=4 utilization≈0.4
}
